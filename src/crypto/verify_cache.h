// Content-addressed cache of *successful* signature verifications.
//
// Key: (signer, prefix-digest); value: the exact signature bytes that
// verified over that prefix, plus the digest of the extended prefix
// (prefix || that signature) recorded when the entry was inserted. A
// lookup answers "already verified" only for an exact (signer,
// prefix-digest, signature-bytes) triple seen before, so a forged
// signature presented over a cached honest prefix can never be accepted
// off the cache — its bytes differ from the stored ones, the lookup
// misses, and the full verification path runs (and rejects it).
//
// Returning the extended digest on a hit lets verify_chain walk a fully
// cached chain digest-to-digest without rehashing anything: under SHA-256
// collision resistance the prefix digest determines the prefix, so it also
// determines the digest of (prefix || sig) — the same assumption that lets
// signatures cover digests instead of full prefixes in the first place.
//
// Negative results are deliberately NOT cached: a failed verification
// leaves no trace here, so an adversary cannot poison the cache into later
// rejecting (or accepting) honestly signed chains. The cache is purely an
// accelerator — with or without it, verify_chain accepts exactly the same
// set of chains.
//
// One instance per process (simulator) or per endpoint (net runtime);
// instances are not thread-safe and must not be shared across threads.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "crypto/scheme.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace dr::crypto {

class VerifyCache {
 public:
  /// If this exact (signer, prefix, sig) triple verified before, returns
  /// the digest of (prefix || sig) recorded at insert time; otherwise
  /// nullopt. Counts a hit or a miss either way.
  std::optional<Digest> lookup(ProcId signer, const Digest& prefix_digest,
                               ByteView sig);

  /// Records a successful verification of `sig` over `prefix_digest`,
  /// together with the digest of the extended prefix. Callers must only
  /// insert triples that passed full verification.
  void insert(ProcId signer, const Digest& prefix_digest, ByteView sig,
              const Digest& extended_digest);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Key {
    ProcId signer = 0;
    Digest prefix{};

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  struct Entry {
    Bytes sig;
    Digest extended{};
  };

  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace dr::crypto
