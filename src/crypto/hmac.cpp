#include "crypto/hmac.h"

#include <cstring>

namespace dr::crypto {

Digest hmac_sha256(ByteView key, ByteView message) {
  std::uint8_t key_block[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    const Digest kd = sha256(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    if (!key.empty()) std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kSha256BlockSize];
  std::uint8_t opad[kSha256BlockSize];
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ByteView{ipad, kSha256BlockSize});
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteView{opad, kSha256BlockSize});
  outer.update(ByteView{inner_digest.data(), inner_digest.size()});
  return outer.finish();
}

Bytes derive_key(ByteView seed, ByteView label) {
  const Digest d = hmac_sha256(seed, label);
  return Bytes(d.begin(), d.end());
}

}  // namespace dr::crypto
