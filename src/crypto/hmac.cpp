#include "crypto/hmac.h"

#include <cstring>

namespace dr::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::uint8_t key_block[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    const Digest kd = sha256(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    if (!key.empty()) std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kSha256BlockSize];
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad_[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  inner_.update(ByteView{ipad, kSha256BlockSize});
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

Digest HmacSha256::finish() {
  const Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(ByteView{opad_.data(), opad_.size()});
  outer.update(ByteView{inner_digest.data(), inner_digest.size()});
  return outer.finish();
}

Digest hmac_sha256(ByteView key, ByteView message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finish();
}

HmacKey::HmacKey(ByteView key) {
  std::uint8_t key_block[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    const Digest kd = sha256(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    if (!key.empty()) std::memcpy(key_block, key.data(), key.size());
  }
  std::uint8_t pad[kSha256BlockSize];
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
  }
  inner_state_.update(ByteView{pad, kSha256BlockSize});
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  outer_state_.update(ByteView{pad, kSha256BlockSize});
}

Digest HmacKey::mac(ByteView message) const {
  Sha256 inner = inner_state_;
  inner.update(message);
  const Digest inner_digest = inner.finish();
  Sha256 outer = outer_state_;
  outer.update(ByteView{inner_digest.data(), inner_digest.size()});
  return outer.finish();
}

Bytes derive_key(ByteView seed, ByteView label) {
  const Digest d = hmac_sha256(seed, label);
  return Bytes(d.begin(), d.end());
}

}  // namespace dr::crypto
