#include "crypto/hmac.h"

#include <algorithm>
#include <cstring>

#include "crypto/hash_backend.h"
#include "util/contracts.h"

namespace dr::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::uint8_t key_block[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    const Digest kd = sha256(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    if (!key.empty()) std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kSha256BlockSize];
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad_[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  inner_.update(ByteView{ipad, kSha256BlockSize});
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

Digest HmacSha256::finish() {
  const Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(ByteView{opad_.data(), opad_.size()});
  outer.update(ByteView{inner_digest.data(), inner_digest.size()});
  return outer.finish();
}

Digest hmac_sha256(ByteView key, ByteView message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finish();
}

HmacKey::HmacKey(ByteView key) {
  std::uint8_t key_block[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    const Digest kd = sha256(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    if (!key.empty()) std::memcpy(key_block, key.data(), key.size());
  }
  std::uint8_t pad[kSha256BlockSize];
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
  }
  inner_state_.update(ByteView{pad, kSha256BlockSize});
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  outer_state_.update(ByteView{pad, kSha256BlockSize});
}

Digest HmacKey::mac(ByteView message) const {
  Sha256 inner = inner_state_;
  inner.update(message);
  const Digest inner_digest = inner.finish();
  Sha256 outer = outer_state_;
  outer.update(ByteView{inner_digest.data(), inner_digest.size()});
  return outer.finish();
}

namespace {

constexpr std::size_t kMaxLanes = 16;

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

/// Two multi-buffer compressions compute up to kMaxLanes one-block HMACs:
/// lane i's inner block is message_i padded to 64 bytes, its outer block
/// is the inner digest padded — both seeded from the per-item midstates.
void mac_group(HmacBatchItem* items, std::size_t count) {
  DR_EXPECTS(count <= kMaxLanes);
  const HashBackend& backend = hash_backend();

  std::uint32_t states[kMaxLanes][8];
  std::uint8_t blocks[kMaxLanes][kSha256BlockSize];
  std::uint32_t* state_ptrs[kMaxLanes];
  const std::uint8_t* block_ptrs[kMaxLanes];

  // Inner pass: midstate(key ^ ipad) absorbing message || pad || bitlen.
  for (std::size_t i = 0; i < count; ++i) {
    const HmacBatchItem& item = items[i];
    const Sha256& mid = item.key->inner_midstate();
    std::memcpy(states[i], mid.state_words().data(), sizeof(states[i]));
    std::memset(blocks[i], 0, kSha256BlockSize);
    if (!item.message.empty()) {
      std::memcpy(blocks[i], item.message.data(), item.message.size());
    }
    blocks[i][item.message.size()] = 0x80;
    store_be64(blocks[i] + 56,
               (kSha256BlockSize + item.message.size()) * 8);
    state_ptrs[i] = states[i];
    block_ptrs[i] = blocks[i];
  }
  backend.compress_mb(state_ptrs, block_ptrs, count);

  // Outer pass: midstate(key ^ opad) absorbing inner-digest || pad ||
  // bitlen. The inner digest is the big-endian serialization of the lane
  // state the first pass left behind.
  for (std::size_t i = 0; i < count; ++i) {
    std::uint8_t* block = blocks[i];
    for (int j = 0; j < 8; ++j) store_be32(block + 4 * j, states[i][j]);
    std::memset(block + kSha256DigestSize, 0,
                kSha256BlockSize - kSha256DigestSize);
    block[kSha256DigestSize] = 0x80;
    store_be64(block + 56, (kSha256BlockSize + kSha256DigestSize) * 8);
    const Sha256& mid = items[i].key->outer_midstate();
    std::memcpy(states[i], mid.state_words().data(), sizeof(states[i]));
  }
  backend.compress_mb(state_ptrs, block_ptrs, count);

  for (std::size_t i = 0; i < count; ++i) {
    for (int j = 0; j < 8; ++j) {
      store_be32(items[i].out.data() + 4 * j, states[i][j]);
    }
  }
}

}  // namespace

void hmac_mac_many(HmacBatchItem* items, std::size_t count) {
  // Group the one-block-eligible items into full lanes; oversized messages
  // (none on the chain-verification path) go through the streaming MAC.
  HmacBatchItem* group[kMaxLanes];
  const std::size_t lanes =
      std::max<std::size_t>(1, std::min(kMaxLanes, hash_backend().lanes));
  std::size_t grouped = 0;
  const auto flush = [&] {
    // mac_group wants a contiguous array; gather the scattered items.
    HmacBatchItem scratch[kMaxLanes];
    for (std::size_t i = 0; i < grouped; ++i) scratch[i] = *group[i];
    mac_group(scratch, grouped);
    for (std::size_t i = 0; i < grouped; ++i) group[i]->out = scratch[i].out;
    grouped = 0;
  };
  for (std::size_t i = 0; i < count; ++i) {
    if (items[i].message.size() > kHmacOneBlockMax) {
      items[i].out = items[i].key->mac(items[i].message);
      continue;
    }
    group[grouped++] = &items[i];
    if (grouped == lanes) flush();
  }
  if (grouped > 0) flush();
}

Bytes derive_key(ByteView seed, ByteView label) {
  const Digest d = hmac_sha256(seed, label);
  return Bytes(d.begin(), d.end());
}

}  // namespace dr::crypto
