// Hash-based public-key signatures: Lamport one-time signatures under a
// Merkle tree (the classic Merkle signature scheme).
//
// Why this exists: the default KeyRegistry models the paper's signature
// assumption with HMAC and a trusted key directory. That is a *model* of a
// PKI. This module provides the real thing built from nothing but SHA-256:
// a signer publishes one 32-byte root; every signature is verifiable by
// anyone holding that root, with no shared secrets and no oracle. Running
// the agreement algorithms over this scheme (see crypto tests and
// merkle_signatures example) demonstrates that nothing in the reproduction
// depends on the HMAC shortcut.
//
// Construction
//   * Lamport OTS: secret key = 256 pairs of 32-byte preimages; public key
//     = their hashes; signing a 256-bit digest reveals one preimage per
//     bit.
//   * Merkle tree: 2^h OTS public keys are hashed into leaves; the root is
//     the long-term public key. A signature carries the leaf index, the
//     revealed preimages, the full OTS public key and the authentication
//     path. Each leaf must be used at most once (the scheme is stateful).
//
// Sizes: a signature is 256*32 (revealed) + 2*256*32 (public key) +
// 32*h (path) + small framing ~ 24.6 KiB for h = 6. Verification costs
// ~770 hash evaluations. Use in small-n simulations only.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/scheme.h"
#include "crypto/sha256.h"

namespace dr::crypto {

inline constexpr std::size_t kOtsChunks = 256;  // one per digest bit

/// A Lamport one-time public key: for each digest bit, the hashes of the
/// two secret preimages.
struct OtsPublicKey {
  // [chunk][bit] flattened: entry(i, b) = hashes[2*i + b].
  std::vector<Digest> hashes;  // size 2 * kOtsChunks

  /// The leaf hash committing to this public key.
  Digest leaf_hash() const;
};

/// One-time signature: the revealed preimage per digest bit, plus the full
/// public key (so the verifier can recompute the leaf hash).
struct OtsSignature {
  std::vector<Digest> revealed;  // size kOtsChunks
  OtsPublicKey public_key;
};

/// Derives the OTS secret preimage for (seed, leaf, chunk, bit).
Digest ots_secret(ByteView seed, std::uint32_t leaf, std::uint32_t chunk,
                  std::uint32_t bit);

/// Derives the full OTS public key for a leaf.
OtsPublicKey ots_public_key(ByteView seed, std::uint32_t leaf);

/// Signs a 32-byte digest with leaf's one-time key.
OtsSignature ots_sign(ByteView seed, std::uint32_t leaf,
                      const Digest& digest);

/// Verifies an OTS signature against a digest; returns the leaf hash the
/// signature commits to (nullopt if invalid).
std::optional<Digest> ots_verify(const OtsSignature& sig,
                                 const Digest& digest);

/// A stateful Merkle signing key: 2^height one-time leaves over one root.
class MerklePrivateKey {
 public:
  MerklePrivateKey(Bytes seed, std::size_t height);

  const Digest& root() const { return root_; }
  std::size_t height() const { return height_; }
  std::size_t capacity() const { return leaf_hashes_.size(); }
  std::size_t remaining() const { return capacity() - next_leaf_; }

  struct FullSignature {
    std::uint32_t leaf = 0;
    OtsSignature ots;
    std::vector<Digest> auth_path;  // sibling hashes, leaf level upward
  };

  /// Signs `digest` with the next unused leaf. Precondition: remaining()>0.
  FullSignature sign(const Digest& digest);

 private:
  Bytes seed_;
  std::size_t height_;
  std::size_t next_leaf_ = 0;
  std::vector<Digest> leaf_hashes_;
  // tree_[level][index]; level 0 = leaves, level height_ = root.
  std::vector<std::vector<Digest>> tree_;
  Digest root_{};
};

/// Recomputes the root from a leaf hash and its authentication path.
Digest merkle_root_from_path(const Digest& leaf_hash, std::uint32_t leaf,
                             const std::vector<Digest>& auth_path);

/// The Merkle-node combiner shared by both hash-based schemes.
Digest merkle_hash_pair(const Digest& left, const Digest& right);

Bytes encode_merkle_signature(const MerklePrivateKey::FullSignature& sig);
std::optional<MerklePrivateKey::FullSignature> decode_merkle_signature(
    ByteView data);

/// SignatureScheme over per-processor Merkle keys. Deterministic from the
/// master seed. Verification uses only the public roots.
class MerkleScheme final : public SignatureScheme {
 public:
  MerkleScheme(std::size_t n, std::uint64_t master_seed,
               std::size_t height = 6);

  std::size_t size() const override { return keys_.size(); }
  Bytes sign(ProcId signer, ByteView data) override;
  bool verify(ProcId signer, ByteView data,
              ByteView signature) const override;

  const Digest& public_root(ProcId p) const { return keys_[p].root(); }
  std::size_t remaining(ProcId p) const { return keys_[p].remaining(); }

 private:
  static Digest message_digest(ProcId signer, ByteView data);

  std::vector<MerklePrivateKey> keys_;
};

}  // namespace dr::crypto
