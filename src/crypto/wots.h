// Winternitz one-time signatures (W-OTS) under a Merkle tree: the compact
// sibling of the Lamport scheme in crypto/merkle.h.
//
// With w = 16 the 256-bit message digest splits into 64 base-16 digits plus
// 3 checksum digits; the secret key is 67 seeds, each hashed forward up to
// 15 times. A signature reveals the d_i-th chain element per digit, and the
// verifier finishes each chain (w-1-d_i more hashes) to recompute the
// public leaf hash — so signatures carry no public key at all:
// 67 * 32 B ~ 2.1 KiB against Lamport's ~24 KiB. The checksum digits make
// "hash further forward" forgeries impossible: increasing any message digit
// strictly decreases a checksum digit.
//
// WotsMerkleScheme mirrors MerkleScheme: 2^height one-time leaves per
// processor, the Merkle root is the long-term public key, signing is
// stateful.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/scheme.h"
#include "crypto/sha256.h"

namespace dr::crypto {

inline constexpr std::uint32_t kWotsW = 16;       // chain length base
inline constexpr std::size_t kWotsLen1 = 64;      // digest digits
inline constexpr std::size_t kWotsLen2 = 3;       // checksum digits
inline constexpr std::size_t kWotsLen = kWotsLen1 + kWotsLen2;

/// The w-ary digit decomposition of a digest plus its checksum digits.
std::vector<std::uint32_t> wots_digits(const Digest& digest);

/// H^steps(start), domain-separated per chain position.
Digest wots_chain(const Digest& start, std::uint32_t chain_index,
                  std::uint32_t from, std::uint32_t steps);

/// Secret chain start for (seed, leaf, chain).
Digest wots_secret(ByteView seed, std::uint32_t leaf, std::uint32_t chain);

/// The leaf hash committing to the full W-OTS public key of `leaf`.
Digest wots_leaf_hash(ByteView seed, std::uint32_t leaf);

struct WotsSignature {
  std::vector<Digest> chains;  // kWotsLen partially-advanced chain values
};

WotsSignature wots_sign(ByteView seed, std::uint32_t leaf,
                        const Digest& digest);

/// Completes the chains and returns the leaf hash the signature commits to
/// (to be checked against a Merkle path); nullopt on malformed input.
std::optional<Digest> wots_verify(const WotsSignature& sig,
                                  const Digest& digest);

/// Stateful W-OTS + Merkle signing key (2^height leaves).
class WotsPrivateKey {
 public:
  WotsPrivateKey(Bytes seed, std::size_t height);

  const Digest& root() const { return root_; }
  std::size_t height() const { return height_; }
  std::size_t capacity() const { return leaf_hashes_.size(); }
  std::size_t remaining() const { return capacity() - next_leaf_; }

  struct FullSignature {
    std::uint32_t leaf = 0;
    WotsSignature wots;
    std::vector<Digest> auth_path;
  };

  FullSignature sign(const Digest& digest);

 private:
  Bytes seed_;
  std::size_t height_;
  std::size_t next_leaf_ = 0;
  std::vector<Digest> leaf_hashes_;
  std::vector<std::vector<Digest>> tree_;
  Digest root_{};
};

Bytes encode_wots_signature(const WotsPrivateKey::FullSignature& sig);
std::optional<WotsPrivateKey::FullSignature> decode_wots_signature(
    ByteView data);

/// SignatureScheme over per-processor W-OTS Merkle keys.
class WotsScheme final : public SignatureScheme {
 public:
  WotsScheme(std::size_t n, std::uint64_t master_seed,
             std::size_t height = 6);

  std::size_t size() const override { return keys_.size(); }
  Bytes sign(ProcId signer, ByteView data) override;
  bool verify(ProcId signer, ByteView data,
              ByteView signature) const override;

  const Digest& public_root(ProcId p) const { return keys_[p].root(); }
  std::size_t remaining(ProcId p) const { return keys_[p].remaining(); }

 private:
  static Digest message_digest(ProcId signer, ByteView data);

  std::vector<WotsPrivateKey> keys_;
};

}  // namespace dr::crypto
