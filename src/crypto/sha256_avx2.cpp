// AVX2 8-lane multi-buffer SHA-256: one independent stream per 32-bit
// lane, so eight one-block compressions cost about one scalar compression
// of rounds. Single-stream AVX2 barely beats scalar (the rounds are a
// serial dependency chain), so this backend only provides compress_mb; the
// batch HMAC path (crypto/hmac.cpp) is what feeds it full lanes. Built
// with -mavx2 scoped to this file; without the flag the forwarders keep
// the build portable and the dispatcher skips registration.
#include "crypto/sha256_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace dr::crypto::detail {

bool sha256_avx2_compiled() { return true; }

namespace {

inline __m256i vrotr(__m256i x, int k) {
  return _mm256_or_si256(_mm256_srli_epi32(x, k),
                         _mm256_slli_epi32(x, 32 - k));
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

/// Exactly 8 lanes; callers chunk and handle tails.
void compress8(std::uint32_t* const* states,
               const std::uint8_t* const* blocks) {
  // Transpose the 8 states into one vector per FIPS word (lane i = stream
  // i) and gather the big-endian message words the same way.
  __m256i s[8];
  for (int j = 0; j < 8; ++j) {
    s[j] = _mm256_set_epi32(
        static_cast<int>(states[7][j]), static_cast<int>(states[6][j]),
        static_cast<int>(states[5][j]), static_cast<int>(states[4][j]),
        static_cast<int>(states[3][j]), static_cast<int>(states[2][j]),
        static_cast<int>(states[1][j]), static_cast<int>(states[0][j]));
  }

  __m256i w[64];
  for (int r = 0; r < 16; ++r) {
    w[r] = _mm256_set_epi32(static_cast<int>(load_be32(blocks[7] + 4 * r)),
                            static_cast<int>(load_be32(blocks[6] + 4 * r)),
                            static_cast<int>(load_be32(blocks[5] + 4 * r)),
                            static_cast<int>(load_be32(blocks[4] + 4 * r)),
                            static_cast<int>(load_be32(blocks[3] + 4 * r)),
                            static_cast<int>(load_be32(blocks[2] + 4 * r)),
                            static_cast<int>(load_be32(blocks[1] + 4 * r)),
                            static_cast<int>(load_be32(blocks[0] + 4 * r)));
  }
  for (int r = 16; r < 64; ++r) {
    const __m256i w15 = w[r - 15];
    const __m256i w2 = w[r - 2];
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(vrotr(w15, 7), vrotr(w15, 18)),
        _mm256_srli_epi32(w15, 3));
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(vrotr(w2, 17), vrotr(w2, 19)),
        _mm256_srli_epi32(w2, 10));
    w[r] = _mm256_add_epi32(_mm256_add_epi32(w[r - 16], s0),
                            _mm256_add_epi32(w[r - 7], s1));
  }

  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];
  for (int r = 0; r < 64; ++r) {
    const __m256i big_s1 = _mm256_xor_si256(
        _mm256_xor_si256(vrotr(e, 6), vrotr(e, 11)), vrotr(e, 25));
    const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                        _mm256_andnot_si256(e, g));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, big_s1),
                         _mm256_add_epi32(ch, _mm256_set1_epi32(static_cast<int>(
                                                  kSha256K[r])))),
        w[r]);
    const __m256i big_s0 = _mm256_xor_si256(
        _mm256_xor_si256(vrotr(a, 2), vrotr(a, 13)), vrotr(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i t2 = _mm256_add_epi32(big_s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }

  s[0] = _mm256_add_epi32(s[0], a);
  s[1] = _mm256_add_epi32(s[1], b);
  s[2] = _mm256_add_epi32(s[2], c);
  s[3] = _mm256_add_epi32(s[3], d);
  s[4] = _mm256_add_epi32(s[4], e);
  s[5] = _mm256_add_epi32(s[5], f);
  s[6] = _mm256_add_epi32(s[6], g);
  s[7] = _mm256_add_epi32(s[7], h);

  alignas(32) std::uint32_t out[8];
  for (int j = 0; j < 8; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(out), s[j]);
    for (int i = 0; i < 8; ++i) states[i][j] = out[i];
  }
}

}  // namespace

void sha256_compress_mb_avx2(std::uint32_t* const* states,
                             const std::uint8_t* const* blocks,
                             std::size_t count) {
  while (count >= 8) {
    compress8(states, blocks);
    states += 8;
    blocks += 8;
    count -= 8;
  }
  // Partial groups go through the scalar kernel — bit-identical, and a
  // padded vector pass would not be faster for < 8 lanes of one block.
  if (count > 0) sha256_compress_mb_scalar(states, blocks, count);
}

}  // namespace dr::crypto::detail

#else  // !__AVX2__

namespace dr::crypto::detail {

bool sha256_avx2_compiled() { return false; }

void sha256_compress_mb_avx2(std::uint32_t* const* states,
                             const std::uint8_t* const* blocks,
                             std::size_t count) {
  sha256_compress_mb_scalar(states, blocks, count);
}

}  // namespace dr::crypto::detail

#endif
