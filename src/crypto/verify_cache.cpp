#include "crypto/verify_cache.h"

#include <algorithm>
#include <cstring>

namespace dr::crypto {

namespace {

std::uint64_t fold_digest_word(const Digest& digest) {
  std::uint64_t h = 0;
  std::memcpy(&h, digest.data(), sizeof(h));
  return h;
}

bool same_bytes(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

struct PlanKey {
  ProcId signer = 0;
  Digest covered{};

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};
struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const {
    return static_cast<std::size_t>(
        fold_digest_word(key.covered) ^
        (std::uint64_t{key.signer} * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace

std::size_t VerifyCache::KeyHash::operator()(const Key& key) const {
  // The prefix digest is already uniformly distributed; fold its first
  // word with the signer id.
  return static_cast<std::size_t>(
      fold_digest_word(key.prefix) ^
      (std::uint64_t{key.signer} * 0x9e3779b97f4a7c15ull));
}

std::optional<Digest> VerifyCache::lookup(ProcId signer,
                                          const Digest& prefix_digest,
                                          ByteView sig) {
  const auto it = entries_.find(Key{signer, prefix_digest});
  if (it != entries_.end() && same_bytes(it->second.sig, sig)) {
    ++hits_;
    return it->second.extended;
  }
  ++misses_;
  return std::nullopt;
}

std::optional<Digest> VerifyCache::probe(ProcId signer,
                                         const Digest& prefix_digest,
                                         ByteView sig) const {
  const auto it = entries_.find(Key{signer, prefix_digest});
  if (it != entries_.end() && same_bytes(it->second.sig, sig)) {
    return it->second.extended;
  }
  return std::nullopt;
}

void VerifyCache::insert(ProcId signer, const Digest& prefix_digest,
                         ByteView sig, const Digest& extended_digest) {
  entries_[Key{signer, prefix_digest}] =
      Entry{Bytes(sig.begin(), sig.end()), extended_digest};
}

void verify_batch(const SignatureScheme& scheme, VerifyCache* cache,
                  VerifyRequest* requests, std::size_t count) {
  if (count == 0) return;

  const auto covered_view = [](const VerifyRequest& request) {
    return ByteView{request.covered.data(), request.covered.size()};
  };

  if (cache == nullptr) {
    // No memo to consult or feed — one scheme pass over everything.
    std::vector<VerifyItem> items(count);
    for (std::size_t i = 0; i < count; ++i) {
      items[i] = VerifyItem{requests[i].signer, covered_view(requests[i]),
                            requests[i].sig};
    }
    scheme.verify_batch(items.data(), count);
    for (std::size_t i = 0; i < count; ++i) requests[i].ok = items[i].ok;
    return;
  }

  // Planning pass (non-counting): find the requests the cache cannot
  // answer and collapse duplicate triples to one verification slot.
  // Verification is deterministic, so reusing a verdict is sound; the
  // counting pass below still charges every occurrence exactly as the
  // sequential loop would.
  constexpr std::uint32_t kFromCache = 0xffffffffu;
  std::vector<std::uint32_t> slot_of(count, kFromCache);
  std::vector<std::uint32_t> slot_request;  // representative request index
  // Bucket per (signer, covered): slot ids whose sig bytes then decide
  // duplicate-vs-new (distinct forgeries over one prefix stay distinct).
  std::unordered_map<PlanKey, std::vector<std::uint32_t>, PlanKeyHash>
      buckets;
  for (std::size_t i = 0; i < count; ++i) {
    const VerifyRequest& request = requests[i];
    if (cache->probe(request.signer, request.covered, request.sig)) {
      continue;  // kFromCache
    }
    auto& bucket = buckets[PlanKey{request.signer, request.covered}];
    std::uint32_t slot = kFromCache;
    for (const std::uint32_t candidate : bucket) {
      if (same_bytes(requests[slot_request[candidate]].sig, request.sig)) {
        slot = candidate;
        break;
      }
    }
    if (slot == kFromCache) {
      slot = static_cast<std::uint32_t>(slot_request.size());
      slot_request.push_back(static_cast<std::uint32_t>(i));
      bucket.push_back(slot);
    }
    slot_of[i] = slot;
  }

  // Scheme pass: only the distinct misses, lane-batched.
  std::vector<VerifyItem> items(slot_request.size());
  for (std::size_t s = 0; s < slot_request.size(); ++s) {
    const VerifyRequest& request = requests[slot_request[s]];
    items[s] =
        VerifyItem{request.signer, covered_view(request), request.sig};
  }
  scheme.verify_batch(items.data(), items.size());

  // Commit pass: replay sequential lookup order against the real cache.
  // A triple that verified fresh is inserted at its first occurrence, so
  // its later occurrences hit — the same hit/miss sequence (and counter
  // totals) the per-request loop produces.
  for (std::size_t i = 0; i < count; ++i) {
    VerifyRequest& request = requests[i];
    if (const auto extended =
            cache->lookup(request.signer, request.covered, request.sig)) {
      request.extended = *extended;
      request.ok = true;
      request.cached = true;
      continue;
    }
    const std::uint32_t slot = slot_of[i];
    // A probe hit cannot miss here (entries are never evicted), but stay
    // defensive: verify singly rather than trust a stale plan.
    const bool ok = (slot == kFromCache)
                        ? scheme.verify(request.signer, covered_view(request),
                                        request.sig)
                        : items[slot].ok;
    request.ok = ok;
    request.cached = false;
    if (ok) {
      cache->insert(request.signer, request.covered, request.sig,
                    request.extended);
    }
  }
}

StripedVerifyCache::StripedVerifyCache(std::size_t stripes) {
  stripes_.reserve(stripes == 0 ? 1 : stripes);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, stripes); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::size_t StripedVerifyCache::RealmKeyHash::operator()(
    const RealmKey& key) const {
  return static_cast<std::size_t>(
      fold_digest_word(key.prefix) ^
      (key.realm * 0xd1b54a32d192ed03ull) ^
      (std::uint64_t{key.signer} * 0x9e3779b97f4a7c15ull));
}

StripedVerifyCache::Stripe& StripedVerifyCache::stripe_for(
    const RealmKey& key) {
  return *stripes_[RealmKeyHash{}(key) % stripes_.size()];
}

const StripedVerifyCache::Stripe& StripedVerifyCache::stripe_for(
    const RealmKey& key) const {
  return *stripes_[RealmKeyHash{}(key) % stripes_.size()];
}

std::optional<Digest> StripedVerifyCache::Session::lookup(
    ProcId signer, const Digest& prefix_digest, ByteView sig) {
  const RealmKey key{realm_, signer, prefix_digest};
  Stripe& stripe = owner_->stripe_for(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.entries.find(key);
  if (it != stripe.entries.end() && same_bytes(it->second.sig, sig)) {
    ++stripe.hits;
    ++session_hits_;
    return it->second.extended;
  }
  ++stripe.misses;
  ++session_misses_;
  return std::nullopt;
}

std::optional<Digest> StripedVerifyCache::Session::probe(
    ProcId signer, const Digest& prefix_digest, ByteView sig) const {
  const RealmKey key{realm_, signer, prefix_digest};
  const Stripe& stripe = owner_->stripe_for(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.entries.find(key);
  if (it != stripe.entries.end() && same_bytes(it->second.sig, sig)) {
    return it->second.extended;
  }
  return std::nullopt;
}

void StripedVerifyCache::Session::insert(ProcId signer,
                                         const Digest& prefix_digest,
                                         ByteView sig,
                                         const Digest& extended_digest) {
  const RealmKey key{realm_, signer, prefix_digest};
  Stripe& stripe = owner_->stripe_for(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.entries[key] = StripedVerifyCache::Entry{
      Bytes(sig.begin(), sig.end()), extended_digest};
}

std::size_t StripedVerifyCache::Session::size() const {
  return owner_->size();
}

StripedVerifyCache::StripeStats StripedVerifyCache::stripe_stats(
    std::size_t stripe) const {
  const Stripe& s = *stripes_[stripe];
  std::lock_guard<std::mutex> lock(s.mu);
  return StripeStats{s.hits, s.misses, s.entries.size()};
}

std::size_t StripedVerifyCache::size() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->entries.size();
  }
  return total;
}

}  // namespace dr::crypto
