#include "crypto/verify_cache.h"

#include <algorithm>
#include <cstring>

namespace dr::crypto {

std::size_t VerifyCache::KeyHash::operator()(const Key& key) const {
  // The prefix digest is already uniformly distributed; fold its first
  // word with the signer id.
  std::uint64_t h = 0;
  std::memcpy(&h, key.prefix.data(), sizeof(h));
  return static_cast<std::size_t>(
      h ^ (std::uint64_t{key.signer} * 0x9e3779b97f4a7c15ull));
}

std::optional<Digest> VerifyCache::lookup(ProcId signer,
                                          const Digest& prefix_digest,
                                          ByteView sig) {
  const auto it = entries_.find(Key{signer, prefix_digest});
  if (it != entries_.end() && it->second.sig.size() == sig.size() &&
      std::equal(sig.begin(), sig.end(), it->second.sig.begin())) {
    ++hits_;
    return it->second.extended;
  }
  ++misses_;
  return std::nullopt;
}

void VerifyCache::insert(ProcId signer, const Digest& prefix_digest,
                         ByteView sig, const Digest& extended_digest) {
  entries_[Key{signer, prefix_digest}] =
      Entry{Bytes(sig.begin(), sig.end()), extended_digest};
}

}  // namespace dr::crypto
