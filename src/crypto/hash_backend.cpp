#include "crypto/hash_backend.h"

#include <atomic>
#include <cstdlib>

#include "crypto/sha256_impl.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace dr::crypto {

namespace {

#if defined(__x86_64__) || defined(_M_X64)

struct CpuFeatures {
  bool sha_ni = false;
  bool avx2 = false;
};

CpuFeatures detect_cpu() {
  CpuFeatures out;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return out;
  // Leaf 1: OSXSAVE + AVX tell us whether XGETBV is usable and the OS
  // saves ymm state; without that, executing AVX2 would fault.
  __cpuid(1, eax, ebx, ecx, edx);
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  bool ymm_enabled = false;
  if (osxsave && avx) {
    // XGETBV(0) via asm — the _xgetbv intrinsic needs -mxsave, which we
    // don't want on this always-compiled TU.
    std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    ymm_enabled = (xcr0_lo & 0x6) == 0x6;  // XMM + YMM state enabled
  }
  // Leaf 7.0: EBX bit 5 = AVX2, bit 29 = SHA extensions.
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  out.avx2 = ymm_enabled && (ebx & (1u << 5)) != 0;
  // SHA-NI uses xmm registers only, but the kernel ships it alongside the
  // SSSE3/SSE4.1 shuffles, which every SHA-capable CPU has.
  out.sha_ni = (ebx & (1u << 29)) != 0;
  return out;
}

#else

struct CpuFeatures {
  bool sha_ni = false;
  bool avx2 = false;
};

CpuFeatures detect_cpu() { return {}; }

#endif

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect_cpu();
  return features;
}

const HashBackend kScalarBackend{
    "scalar", 1, &detail::sha256_compress_scalar,
    &detail::sha256_compress_mb_scalar};

const HashBackend kShaNiBackend{
    "shani", 1, &detail::sha256_compress_shani,
    &detail::sha256_compress_mb_shani};

// AVX2 single-stream compression would be the scalar dependency chain in
// wider registers, so this backend's compress is the scalar kernel and all
// of its speedup lives in compress_mb.
const HashBackend kAvx2Backend{
    "avx2", 8, &detail::sha256_compress_scalar,
    &detail::sha256_compress_mb_avx2};

bool backend_supported(const HashBackend* backend) {
  if (backend == &kScalarBackend) return true;
  if (backend == &kShaNiBackend) {
    return detail::sha256_shani_compiled() && cpu_features().sha_ni;
  }
  if (backend == &kAvx2Backend) {
    return detail::sha256_avx2_compiled() && cpu_features().avx2;
  }
  return false;
}

const HashBackend* best_backend() {
  if (backend_supported(&kShaNiBackend)) return &kShaNiBackend;
  if (backend_supported(&kAvx2Backend)) return &kAvx2Backend;
  return &kScalarBackend;
}

const HashBackend* lookup_backend(std::string_view name) {
  if (name == "scalar") return &kScalarBackend;
  if (name == "shani") return &kShaNiBackend;
  if (name == "avx2") return &kAvx2Backend;
  return nullptr;
}

std::atomic<const HashBackend*>& active_backend() {
  static std::atomic<const HashBackend*> active{[] {
    // One-time init: honor DR82_HASH_BACKEND when it names a supported
    // backend, otherwise (unset, "auto", unknown, unsupported) pick the
    // best this CPU runs. Unsupported overrides degrade silently rather
    // than abort: a pinned env var must never turn a working binary into
    // a crashing one on older hardware.
    const char* env = std::getenv("DR82_HASH_BACKEND");
    if (env != nullptr && std::string_view(env) != "auto") {
      const HashBackend* chosen = lookup_backend(env);
      if (chosen != nullptr && backend_supported(chosen)) return chosen;
    }
    return best_backend();
  }()};
  return active;
}

}  // namespace

const HashBackend& hash_backend() {
  return *active_backend().load(std::memory_order_relaxed);
}

const HashBackend& scalar_hash_backend() { return kScalarBackend; }

bool select_hash_backend(std::string_view name) {
  const HashBackend* chosen =
      (name == "auto") ? best_backend() : lookup_backend(name);
  if (chosen == nullptr || !backend_supported(chosen)) return false;
  active_backend().store(chosen, std::memory_order_relaxed);
  return true;
}

std::vector<const HashBackend*> supported_hash_backends() {
  std::vector<const HashBackend*> out;
  for (const HashBackend* backend :
       {&kScalarBackend, &kShaNiBackend, &kAvx2Backend}) {
    if (backend_supported(backend)) out.push_back(backend);
  }
  return out;
}

bool cpu_supports_sha_ni() { return cpu_features().sha_ni; }
bool cpu_supports_avx2() { return cpu_features().avx2; }

}  // namespace dr::crypto
