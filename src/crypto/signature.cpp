#include "crypto/signature.h"

#include <algorithm>

#include "util/contracts.h"

namespace dr::crypto {

void encode(Writer& w, const Signature& sig) {
  w.u32(sig.signer);
  w.bytes(sig.sig);
}

std::optional<Signature> decode_signature(Reader& r) {
  Signature sig;
  sig.signer = r.u32();
  sig.sig = r.bytes();
  if (!r.ok() || sig.sig.empty() || sig.sig.size() > kMaxSignatureSize) {
    return std::nullopt;
  }
  return sig;
}

Signer::Signer(SignatureScheme* scheme, std::vector<ProcId> ids)
    : scheme_(scheme), ids_(std::move(ids)) {
  DR_EXPECTS(scheme_ != nullptr);
  std::sort(ids_.begin(), ids_.end());
}

Signature Signer::sign(ProcId as, ByteView data) const {
  DR_EXPECTS(holds(as));
  return Signature{as, scheme_->sign(as, data)};
}

bool Signer::holds(ProcId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool Verifier::verify(ProcId signer, ByteView data,
                      const Signature& sig) const {
  if (sig.signer != signer) return false;
  return scheme_->verify(signer, data, sig.sig);
}

void Verifier::verify_batch(VerifyItem* items, std::size_t count) const {
  scheme_->verify_batch(items, count);
}

}  // namespace dr::crypto
