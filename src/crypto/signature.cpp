#include "crypto/signature.h"

#include <algorithm>

#include "util/contracts.h"

namespace dr::crypto {

namespace {

/// Byzantine senders control signature bytes; cap what we accept so a
/// malicious chain cannot make receivers allocate unbounded memory. The
/// Merkle scheme's signatures are the largest legitimate ones (~20 KiB).
constexpr std::size_t kMaxSignatureSize = 64 * 1024;

}  // namespace

void encode(Writer& w, const Signature& sig) {
  w.u32(sig.signer);
  w.bytes(sig.sig);
}

std::optional<Signature> decode_signature(Reader& r) {
  Signature sig;
  sig.signer = r.u32();
  sig.sig = r.bytes();
  if (!r.ok() || sig.sig.empty() || sig.sig.size() > kMaxSignatureSize) {
    return std::nullopt;
  }
  return sig;
}

Signer::Signer(SignatureScheme* scheme, std::vector<ProcId> ids)
    : scheme_(scheme), ids_(std::move(ids)) {
  DR_EXPECTS(scheme_ != nullptr);
  std::sort(ids_.begin(), ids_.end());
}

Signature Signer::sign(ProcId as, ByteView data) const {
  DR_EXPECTS(holds(as));
  return Signature{as, scheme_->sign(as, data)};
}

bool Signer::holds(ProcId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool Verifier::verify(ProcId signer, ByteView data,
                      const Signature& sig) const {
  if (sig.signer != signer) return false;
  return scheme_->verify(signer, data, sig.sig);
}

}  // namespace dr::crypto
