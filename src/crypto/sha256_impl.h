// Internal linkage header between hash_backend.cpp and the per-ISA
// compression translation units. Each ISA lives in its own TU so CMake can
// scope -msha/-mavx2 to exactly that file; TUs built without the ISA
// compile a scalar forwarder and report *_compiled() == false so the
// dispatcher never registers them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dr::crypto::detail {

void sha256_compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                            std::size_t nblocks);
void sha256_compress_mb_scalar(std::uint32_t* const* states,
                               const std::uint8_t* const* blocks,
                               std::size_t count);

bool sha256_shani_compiled();
void sha256_compress_shani(std::uint32_t* state, const std::uint8_t* blocks,
                           std::size_t nblocks);
void sha256_compress_mb_shani(std::uint32_t* const* states,
                              const std::uint8_t* const* blocks,
                              std::size_t count);

bool sha256_avx2_compiled();
void sha256_compress_mb_avx2(std::uint32_t* const* states,
                             const std::uint8_t* const* blocks,
                             std::size_t count);

/// The round constants, shared by every backend.
extern const std::uint32_t kSha256K[64];

}  // namespace dr::crypto::detail
