#include "crypto/merkle.h"

#include "codec/codec.h"
#include "crypto/hmac.h"
#include "util/contracts.h"

namespace dr::crypto {

Digest merkle_hash_pair(const Digest& left, const Digest& right) {
  Sha256 h;
  h.update(as_bytes("dr82.node"));
  h.update(ByteView{left.data(), left.size()});
  h.update(ByteView{right.data(), right.size()});
  return h.finish();
}

namespace {

bool digest_bit(const Digest& digest, std::uint32_t chunk) {
  return (digest[chunk / 8] >> (chunk % 8)) & 1;
}

}  // namespace

Digest OtsPublicKey::leaf_hash() const {
  Sha256 h;
  h.update(as_bytes("dr82.leaf"));
  for (const Digest& d : hashes) h.update(ByteView{d.data(), d.size()});
  return h.finish();
}

Digest ots_secret(ByteView seed, std::uint32_t leaf, std::uint32_t chunk,
                  std::uint32_t bit) {
  Writer label;
  label.str("dr82.ots");
  label.u32(leaf);
  label.u32(chunk);
  label.u32(bit);
  const Bytes material = std::move(label).take();
  return hmac_sha256(seed, material);
}

OtsPublicKey ots_public_key(ByteView seed, std::uint32_t leaf) {
  OtsPublicKey pk;
  pk.hashes.reserve(2 * kOtsChunks);
  for (std::uint32_t chunk = 0; chunk < kOtsChunks; ++chunk) {
    for (std::uint32_t bit = 0; bit < 2; ++bit) {
      const Digest secret = ots_secret(seed, leaf, chunk, bit);
      pk.hashes.push_back(sha256(ByteView{secret.data(), secret.size()}));
    }
  }
  return pk;
}

OtsSignature ots_sign(ByteView seed, std::uint32_t leaf,
                      const Digest& digest) {
  OtsSignature sig;
  sig.revealed.reserve(kOtsChunks);
  for (std::uint32_t chunk = 0; chunk < kOtsChunks; ++chunk) {
    const std::uint32_t bit = digest_bit(digest, chunk) ? 1 : 0;
    sig.revealed.push_back(ots_secret(seed, leaf, chunk, bit));
  }
  sig.public_key = ots_public_key(seed, leaf);
  return sig;
}

std::optional<Digest> ots_verify(const OtsSignature& sig,
                                 const Digest& digest) {
  if (sig.revealed.size() != kOtsChunks) return std::nullopt;
  if (sig.public_key.hashes.size() != 2 * kOtsChunks) return std::nullopt;
  for (std::uint32_t chunk = 0; chunk < kOtsChunks; ++chunk) {
    const std::uint32_t bit = digest_bit(digest, chunk) ? 1 : 0;
    const Digest hashed = sha256(ByteView{sig.revealed[chunk].data(),
                                          sig.revealed[chunk].size()});
    if (hashed != sig.public_key.hashes[2 * chunk + bit]) {
      return std::nullopt;
    }
  }
  return sig.public_key.leaf_hash();
}

MerklePrivateKey::MerklePrivateKey(Bytes seed, std::size_t height)
    : seed_(std::move(seed)), height_(height) {
  DR_EXPECTS(height >= 1 && height <= 20);
  const std::size_t leaves = std::size_t{1} << height;
  leaf_hashes_.reserve(leaves);
  for (std::uint32_t leaf = 0; leaf < leaves; ++leaf) {
    leaf_hashes_.push_back(ots_public_key(seed_, leaf).leaf_hash());
  }
  tree_.push_back(leaf_hashes_);
  while (tree_.back().size() > 1) {
    const auto& below = tree_.back();
    std::vector<Digest> level;
    level.reserve(below.size() / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      level.push_back(merkle_hash_pair(below[i], below[i + 1]));
    }
    tree_.push_back(std::move(level));
  }
  root_ = tree_.back().front();
}

MerklePrivateKey::FullSignature MerklePrivateKey::sign(
    const Digest& digest) {
  DR_EXPECTS(remaining() > 0);
  FullSignature out;
  out.leaf = static_cast<std::uint32_t>(next_leaf_++);
  out.ots = ots_sign(seed_, out.leaf, digest);
  std::size_t index = out.leaf;
  for (std::size_t level = 0; level < height_; ++level) {
    out.auth_path.push_back(tree_[level][index ^ 1]);
    index >>= 1;
  }
  return out;
}

Digest merkle_root_from_path(const Digest& leaf_hash, std::uint32_t leaf,
                             const std::vector<Digest>& auth_path) {
  Digest node = leaf_hash;
  std::size_t index = leaf;
  for (const Digest& sibling : auth_path) {
    node = (index & 1) ? merkle_hash_pair(sibling, node)
                       : merkle_hash_pair(node, sibling);
    index >>= 1;
  }
  return node;
}

Bytes encode_merkle_signature(const MerklePrivateKey::FullSignature& sig) {
  Writer w;
  w.u32(sig.leaf);
  w.seq(sig.ots.revealed.size());
  for (const Digest& d : sig.ots.revealed) {
    w.bytes(ByteView{d.data(), d.size()});
  }
  w.seq(sig.ots.public_key.hashes.size());
  for (const Digest& d : sig.ots.public_key.hashes) {
    w.bytes(ByteView{d.data(), d.size()});
  }
  w.seq(sig.auth_path.size());
  for (const Digest& d : sig.auth_path) {
    w.bytes(ByteView{d.data(), d.size()});
  }
  return std::move(w).take();
}

namespace {

bool read_digests(Reader& r, std::size_t count, std::vector<Digest>& out) {
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Bytes raw = r.bytes();
    if (!r.ok() || raw.size() != kSha256DigestSize) return false;
    Digest d;
    std::copy(raw.begin(), raw.end(), d.begin());
    out.push_back(d);
  }
  return true;
}

}  // namespace

std::optional<MerklePrivateKey::FullSignature> decode_merkle_signature(
    ByteView data) {
  Reader r(data);
  MerklePrivateKey::FullSignature sig;
  sig.leaf = r.u32();
  if (!read_digests(r, r.seq(), sig.ots.revealed)) return std::nullopt;
  if (!read_digests(r, r.seq(), sig.ots.public_key.hashes)) {
    return std::nullopt;
  }
  const std::size_t path_len = r.seq();
  if (path_len > 24) return std::nullopt;
  if (!read_digests(r, path_len, sig.auth_path)) return std::nullopt;
  if (!r.done()) return std::nullopt;
  return sig;
}

MerkleScheme::MerkleScheme(std::size_t n, std::uint64_t master_seed,
                           std::size_t height) {
  const Bytes seed = encode_u64(master_seed);
  keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Writer label;
    label.str("dr82.mss");
    label.u64(i);
    keys_.emplace_back(derive_key(seed, std::move(label).take()), height);
  }
}

Digest MerkleScheme::message_digest(ProcId signer, ByteView data) {
  Sha256 h;
  h.update(as_bytes("dr82.msg"));
  Writer w;
  w.u32(signer);
  w.bytes(data);
  const Bytes framed = std::move(w).take();
  h.update(framed);
  return h.finish();
}

Bytes MerkleScheme::sign(ProcId signer, ByteView data) {
  DR_EXPECTS(signer < keys_.size());
  return encode_merkle_signature(
      keys_[signer].sign(message_digest(signer, data)));
}

bool MerkleScheme::verify(ProcId signer, ByteView data,
                          ByteView signature) const {
  if (signer >= keys_.size()) return false;
  const auto sig = decode_merkle_signature(signature);
  if (!sig) return false;
  if (sig->auth_path.size() != keys_[signer].height()) return false;
  if (sig->leaf >= keys_[signer].capacity()) return false;
  const auto leaf_hash = ots_verify(sig->ots,
                                    message_digest(signer, data));
  if (!leaf_hash) return false;
  return merkle_root_from_path(*leaf_hash, sig->leaf, sig->auth_path) ==
         keys_[signer].root();
}

}  // namespace dr::crypto
