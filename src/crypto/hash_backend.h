// Runtime-dispatched SHA-256 compression backends.
//
// The Sha256 streaming class (crypto/sha256.h) owns all buffering, padding
// and midstate semantics; a backend is only the block-compression kernel
// under it. Three are built into every binary:
//   * scalar — the FIPS 180-4 reference loop, always available;
//   * shani  — x86 SHA extensions (one block in ~2 cycles/round via
//     SHA256RNDS2), the fastest single-stream path;
//   * avx2   — 8-lane multi-buffer compression (one independent stream per
//     lane). Single-stream it is the scalar loop; its value is
//     compress_mb, which the batch HMAC path feeds 8 MACs at a time.
// Selection: DR82_HASH_BACKEND=scalar|avx2|shani|auto (env, read once),
// else the best the CPU supports. All backends are bit-identical —
// tests/crypto_backend_test.cpp fuzzes that equivalence — so dispatch can
// never change any digest, signature or wire byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace dr::crypto {

/// One SHA-256 compression implementation. Both entry points fold 64-byte
/// blocks into 8-word states exactly as FIPS 180-4 specifies; neither pads
/// nor finalizes.
struct HashBackend {
  const char* name;
  /// Preferred compress_mb batch width (1 for single-stream backends).
  std::size_t lanes;
  /// Folds `nblocks` consecutive blocks of ONE stream into `state`.
  void (*compress)(std::uint32_t* state, const std::uint8_t* blocks,
                   std::size_t nblocks);
  /// Folds one block each of `count` INDEPENDENT streams: states[i] is
  /// stream i's 8-word state, blocks[i] its 64-byte block. Backends may be
  /// called with any count; they chunk internally.
  void (*compress_mb)(std::uint32_t* const* states,
                      const std::uint8_t* const* blocks, std::size_t count);
};

/// The active backend. First call resolves DR82_HASH_BACKEND (unset or
/// "auto" picks the best supported); afterwards this is one relaxed atomic
/// load.
const HashBackend& hash_backend();

/// The always-available reference backend.
const HashBackend& scalar_hash_backend();

/// Selects a backend by name ("scalar", "avx2", "shani", "auto"). Returns
/// false — and leaves the active backend unchanged — for unknown names and
/// for backends this CPU cannot run.
bool select_hash_backend(std::string_view name);

/// Backends this build + CPU can actually run (scalar always included).
std::vector<const HashBackend*> supported_hash_backends();

/// CPU capability probes (false on non-x86 builds).
bool cpu_supports_sha_ni();
bool cpu_supports_avx2();

}  // namespace dr::crypto
