// Signature values and the Signer capability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "codec/codec.h"
#include "crypto/scheme.h"

namespace dr::crypto {

/// Byzantine senders control signature bytes; cap what decoders accept so a
/// malicious chain cannot make receivers allocate unbounded memory. The
/// Merkle scheme's signatures are the largest legitimate ones (~20 KiB).
/// Shared by decode_signature and the in-place chain parser in
/// ba::prewarm_inbox, which must accept exactly the same inputs.
inline constexpr std::size_t kMaxSignatureSize = 64 * 1024;

/// A signature value: who signed plus the scheme-specific signature bytes
/// (32 for HMAC, a few KB for the Merkle scheme). Serialized inside
/// messages.
struct Signature {
  ProcId signer = 0;
  Bytes sig;

  friend bool operator==(const Signature&, const Signature&) = default;
};

void encode(Writer& w, const Signature& sig);
std::optional<Signature> decode_signature(Reader& r);

/// Signing capability. The simulator constructs one per correct processor
/// (singleton id set) and one per adversary coalition (all faulty ids). A
/// Signer refuses to sign for ids it does not hold — this is the mechanism
/// that makes forgery impossible in the simulation.
class Signer {
 public:
  Signer(SignatureScheme* scheme, std::vector<ProcId> ids);

  /// Signs `data` as `as`. Precondition: holds(as).
  Signature sign(ProcId as, ByteView data) const;

  bool holds(ProcId id) const;
  const std::vector<ProcId>& ids() const { return ids_; }

 private:
  SignatureScheme* scheme_;  // non-owning; outlives the Signer
  std::vector<ProcId> ids_;
};

/// Public verification, available to everyone.
class Verifier {
 public:
  explicit Verifier(const SignatureScheme* scheme) : scheme_(scheme) {}

  bool verify(ProcId signer, ByteView data, const Signature& sig) const;

  /// Batch verification of raw (signer, data, sig-bytes) items — same
  /// verdicts as verify() per item, routed through the scheme's lane-
  /// batched override when it has one.
  void verify_batch(VerifyItem* items, std::size_t count) const;

  const SignatureScheme* scheme() const { return scheme_; }

 private:
  const SignatureScheme* scheme_;
};

}  // namespace dr::crypto
