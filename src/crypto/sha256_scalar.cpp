// The FIPS 180-4 reference compression loop — the always-available backend
// and the correctness baseline the SIMD backends are fuzzed against.
#include "crypto/sha256_impl.h"

namespace dr::crypto::detail {

const std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

namespace {

inline std::uint32_t rotr(std::uint32_t x, int k) {
  return (x >> k) | (x << (32 - k));
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void compress_one(std::uint32_t* state, const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 =
        h + s1 + ch + kSha256K[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

void sha256_compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                            std::size_t nblocks) {
  for (std::size_t i = 0; i < nblocks; ++i) {
    compress_one(state, blocks + 64 * i);
  }
}

void sha256_compress_mb_scalar(std::uint32_t* const* states,
                               const std::uint8_t* const* blocks,
                               std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    compress_one(states[i], blocks[i]);
  }
}

}  // namespace dr::crypto::detail
