#include "crypto/wots.h"

#include "codec/codec.h"
#include "crypto/hmac.h"
#include "util/contracts.h"

namespace dr::crypto {

std::vector<std::uint32_t> wots_digits(const Digest& digest) {
  std::vector<std::uint32_t> digits;
  digits.reserve(kWotsLen);
  for (std::uint8_t byte : digest) {
    digits.push_back(byte >> 4);
    digits.push_back(byte & 0x0f);
  }
  DR_ASSERT(digits.size() == kWotsLen1);
  // Checksum: sum of (w-1-d_i) in base w, little-endian, kWotsLen2 digits.
  std::uint32_t checksum = 0;
  for (std::uint32_t d : digits) checksum += kWotsW - 1 - d;
  for (std::size_t i = 0; i < kWotsLen2; ++i) {
    digits.push_back(checksum % kWotsW);
    checksum /= kWotsW;
  }
  DR_ASSERT(checksum == 0);  // 64 * 15 = 960 < 16^3
  return digits;
}

Digest wots_chain(const Digest& start, std::uint32_t chain_index,
                  std::uint32_t from, std::uint32_t steps) {
  Digest value = start;
  for (std::uint32_t i = 0; i < steps; ++i) {
    Sha256 h;
    h.update(as_bytes("dr82.wots"));
    Writer w;
    w.u32(chain_index);
    w.u32(from + i);
    h.update(std::move(w).take());
    h.update(ByteView{value.data(), value.size()});
    value = h.finish();
  }
  return value;
}

Digest wots_secret(ByteView seed, std::uint32_t leaf, std::uint32_t chain) {
  Writer label;
  label.str("dr82.wots.sk");
  label.u32(leaf);
  label.u32(chain);
  return hmac_sha256(seed, std::move(label).take());
}

Digest wots_leaf_hash(ByteView seed, std::uint32_t leaf) {
  Sha256 h;
  h.update(as_bytes("dr82.wots.leaf"));
  for (std::uint32_t chain = 0; chain < kWotsLen; ++chain) {
    const Digest end =
        wots_chain(wots_secret(seed, leaf, chain), chain, 0, kWotsW - 1);
    h.update(ByteView{end.data(), end.size()});
  }
  return h.finish();
}

WotsSignature wots_sign(ByteView seed, std::uint32_t leaf,
                        const Digest& digest) {
  const std::vector<std::uint32_t> digits = wots_digits(digest);
  WotsSignature sig;
  sig.chains.reserve(kWotsLen);
  for (std::uint32_t chain = 0; chain < kWotsLen; ++chain) {
    sig.chains.push_back(wots_chain(wots_secret(seed, leaf, chain), chain, 0,
                                    digits[chain]));
  }
  return sig;
}

std::optional<Digest> wots_verify(const WotsSignature& sig,
                                  const Digest& digest) {
  if (sig.chains.size() != kWotsLen) return std::nullopt;
  const std::vector<std::uint32_t> digits = wots_digits(digest);
  Sha256 h;
  h.update(as_bytes("dr82.wots.leaf"));
  for (std::uint32_t chain = 0; chain < kWotsLen; ++chain) {
    const Digest end = wots_chain(sig.chains[chain], chain, digits[chain],
                                  kWotsW - 1 - digits[chain]);
    h.update(ByteView{end.data(), end.size()});
  }
  return h.finish();
}

WotsPrivateKey::WotsPrivateKey(Bytes seed, std::size_t height)
    : seed_(std::move(seed)), height_(height) {
  DR_EXPECTS(height >= 1 && height <= 20);
  const std::size_t leaves = std::size_t{1} << height;
  leaf_hashes_.reserve(leaves);
  for (std::uint32_t leaf = 0; leaf < leaves; ++leaf) {
    leaf_hashes_.push_back(wots_leaf_hash(seed_, leaf));
  }
  tree_.push_back(leaf_hashes_);
  while (tree_.back().size() > 1) {
    const auto& below = tree_.back();
    std::vector<Digest> level;
    level.reserve(below.size() / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      level.push_back(merkle_hash_pair(below[i], below[i + 1]));
    }
    tree_.push_back(std::move(level));
  }
  root_ = tree_.back().front();
}

WotsPrivateKey::FullSignature WotsPrivateKey::sign(const Digest& digest) {
  DR_EXPECTS(remaining() > 0);
  FullSignature out;
  out.leaf = static_cast<std::uint32_t>(next_leaf_++);
  out.wots = wots_sign(seed_, out.leaf, digest);
  std::size_t index = out.leaf;
  for (std::size_t level = 0; level < height_; ++level) {
    out.auth_path.push_back(tree_[level][index ^ 1]);
    index >>= 1;
  }
  return out;
}

Bytes encode_wots_signature(const WotsPrivateKey::FullSignature& sig) {
  Writer w;
  w.u32(sig.leaf);
  w.seq(sig.wots.chains.size());
  for (const Digest& d : sig.wots.chains) {
    w.bytes(ByteView{d.data(), d.size()});
  }
  w.seq(sig.auth_path.size());
  for (const Digest& d : sig.auth_path) {
    w.bytes(ByteView{d.data(), d.size()});
  }
  return std::move(w).take();
}

namespace {

bool read_digests(Reader& r, std::size_t count, std::vector<Digest>& out) {
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Bytes raw = r.bytes();
    if (!r.ok() || raw.size() != kSha256DigestSize) return false;
    Digest d;
    std::copy(raw.begin(), raw.end(), d.begin());
    out.push_back(d);
  }
  return true;
}

}  // namespace

std::optional<WotsPrivateKey::FullSignature> decode_wots_signature(
    ByteView data) {
  Reader r(data);
  WotsPrivateKey::FullSignature sig;
  sig.leaf = r.u32();
  const std::size_t chains = r.seq();
  if (chains != kWotsLen) return std::nullopt;
  if (!read_digests(r, chains, sig.wots.chains)) return std::nullopt;
  const std::size_t path_len = r.seq();
  if (path_len > 24) return std::nullopt;
  if (!read_digests(r, path_len, sig.auth_path)) return std::nullopt;
  if (!r.done()) return std::nullopt;
  return sig;
}

WotsScheme::WotsScheme(std::size_t n, std::uint64_t master_seed,
                       std::size_t height) {
  const Bytes seed = encode_u64(master_seed);
  keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Writer label;
    label.str("dr82.wotskey");
    label.u64(i);
    keys_.emplace_back(derive_key(seed, std::move(label).take()), height);
  }
}

Digest WotsScheme::message_digest(ProcId signer, ByteView data) {
  Sha256 h;
  h.update(as_bytes("dr82.wots.msg"));
  Writer w;
  w.u32(signer);
  w.bytes(data);
  h.update(std::move(w).take());
  return h.finish();
}

Bytes WotsScheme::sign(ProcId signer, ByteView data) {
  DR_EXPECTS(signer < keys_.size());
  return encode_wots_signature(
      keys_[signer].sign(message_digest(signer, data)));
}

bool WotsScheme::verify(ProcId signer, ByteView data,
                        ByteView signature) const {
  if (signer >= keys_.size()) return false;
  const auto sig = decode_wots_signature(signature);
  if (!sig) return false;
  if (sig->auth_path.size() != keys_[signer].height()) return false;
  if (sig->leaf >= keys_[signer].capacity()) return false;
  const auto leaf_hash = wots_verify(sig->wots,
                                     message_digest(signer, data));
  if (!leaf_hash) return false;
  return merkle_root_from_path(*leaf_hash, sig->leaf, sig->auth_path) ==
         keys_[signer].root();
}

}  // namespace dr::crypto
