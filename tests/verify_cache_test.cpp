// Adversarial safety of the content-addressed verification cache: a warm
// cache must never change which chains verify_chain accepts. The cache
// memoizes successful (signer, prefix-digest, signature) triples, so every
// test here probes the ways a forger could try to ride a cached honest
// prefix past verification.
#include <gtest/gtest.h>

#include <thread>

#include "ba/signed_value.h"
#include "crypto/key_registry.h"
#include "crypto/merkle.h"
#include "crypto/verify_cache.h"
#include "test_util.h"

namespace dr {
namespace {

using crypto::Digest;
using crypto::VerifyCache;

Digest digest_of(std::uint8_t fill) {
  Digest d{};
  d.fill(fill);
  return d;
}

TEST(VerifyCache, ExactTripleSemantics) {
  VerifyCache cache;
  const Digest prefix = digest_of(0x11);
  const Digest extended = digest_of(0x22);
  const Bytes sig{1, 2, 3, 4};

  EXPECT_FALSE(cache.lookup(3, prefix, sig).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(3, prefix, sig, extended);
  const auto hit = cache.lookup(3, prefix, sig);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, extended);
  EXPECT_EQ(cache.hits(), 1u);

  // Any deviation in the triple misses: signer, prefix, or signature bytes.
  EXPECT_FALSE(cache.lookup(4, prefix, sig).has_value());
  EXPECT_FALSE(cache.lookup(3, digest_of(0x12), sig).has_value());
  Bytes forged = sig;
  forged[0] ^= 0x80;
  EXPECT_FALSE(cache.lookup(3, prefix, forged).has_value());
  Bytes truncated(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(cache.lookup(3, prefix, truncated).has_value());
  EXPECT_EQ(cache.misses(), 5u);

  // Re-insert overwrites: the latest verified extension wins.
  const Digest extended2 = digest_of(0x33);
  cache.insert(3, prefix, sig, extended2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.lookup(3, prefix, sig), extended2);
}

class ChainCacheSafety : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 8;
  static constexpr std::size_t kLen = 6;

  ChainCacheSafety() : scheme_(kN, 7), verifier_(&scheme_) {
    std::vector<crypto::ProcId> ids;
    for (std::size_t p = 0; p < kN; ++p) {
      ids.push_back(static_cast<crypto::ProcId>(p));
    }
    signer_ = std::make_unique<crypto::Signer>(&scheme_, ids);
    honest_ = ba::make_signed(1, *signer_, 0);
    for (std::size_t p = 1; p < kLen; ++p) {
      honest_ = ba::extend(std::move(honest_), *signer_,
                           static_cast<ba::ProcId>(p));
    }
    // Warm the cache exactly the way a relaying process would: by fully
    // verifying the honest chain once.
    EXPECT_TRUE(ba::verify_chain(honest_, verifier_, &cache_));
    EXPECT_EQ(cache_.size(), kLen);
  }

  /// The property under test: the cache changes performance, never
  /// acceptance. Checks the tampered chain against a cold verifier and the
  /// warm cache, and that both agree.
  void expect_rejected_despite_warm_cache(const ba::SignedValue& sv) {
    EXPECT_FALSE(ba::verify_chain(sv, verifier_));
    EXPECT_FALSE(ba::verify_chain(sv, verifier_, &cache_));
    // The honest chain must still verify afterwards — failed attempts must
    // not poison the cache.
    EXPECT_TRUE(ba::verify_chain(honest_, verifier_, &cache_));
  }

  crypto::KeyRegistry scheme_;
  crypto::Verifier verifier_;
  std::unique_ptr<crypto::Signer> signer_;
  ba::SignedValue honest_;
  VerifyCache cache_;
};

TEST_F(ChainCacheSafety, ForgedMidChainSignatureRejected) {
  for (std::size_t i = 0; i < kLen; ++i) {
    ba::SignedValue forged = honest_;
    forged.chain[i].sig[5] ^= 0x01;
    expect_rejected_despite_warm_cache(forged);
  }
}

TEST_F(ChainCacheSafety, ReattributedSignatureRejected) {
  // Claim processor 7 (never signed) produced signature 2's bytes.
  ba::SignedValue forged = honest_;
  forged.chain[2].signer = 7;
  expect_rejected_despite_warm_cache(forged);
}

TEST_F(ChainCacheSafety, SplicedSignatureRejected) {
  // Every signature in the warm cache individually verified — but only
  // over its own prefix. Splicing a genuinely-signed signature onto a
  // different position must miss and fail full verification.
  ba::SignedValue spliced = honest_;
  std::swap(spliced.chain[1], spliced.chain[4]);
  expect_rejected_despite_warm_cache(spliced);
}

TEST_F(ChainCacheSafety, ValueSwapUnderCachedChainRejected) {
  // Same signatures over a different value: the head digest differs, so
  // the very first lookup misses and verification fails.
  ba::SignedValue forged = honest_;
  forged.value = 0;
  expect_rejected_despite_warm_cache(forged);
}

TEST_F(ChainCacheSafety, TruncationAndExtensionStayConsistent) {
  // Prefixes of an honest chain are themselves honest chains: they verify,
  // and entirely from cache hits.
  const std::size_t hits_before = cache_.hits();
  ba::SignedValue prefix = honest_;
  prefix.chain.resize(3);
  EXPECT_TRUE(ba::verify_chain(prefix, verifier_, &cache_));
  EXPECT_EQ(cache_.hits(), hits_before + 3);

  // A fresh honest extension misses only on the new tail signature.
  const ba::SignedValue extended = ba::extend(honest_, *signer_, 6);
  const std::size_t misses_before = cache_.misses();
  EXPECT_TRUE(ba::verify_chain(extended, verifier_, &cache_));
  EXPECT_EQ(cache_.misses(), misses_before + 1);
}

TEST_F(ChainCacheSafety, ForgedTailAfterCachedPrefixRejected) {
  // The canonical attack the exact-triple rule blocks: extend a fully
  // cached honest prefix with garbage claiming to be processor 6.
  ba::SignedValue forged = honest_;
  forged.chain.push_back({6, Bytes(32, 0xAB)});
  expect_rejected_despite_warm_cache(forged);
}

TEST(VerifyCacheMerkle, WorksWithVariableLengthSignatures) {
  // The Merkle scheme's signatures are KBs, not 32 bytes; the cache keys on
  // exact bytes regardless of size.
  crypto::MerkleScheme scheme(4, /*master_seed=*/3, /*height=*/5);
  std::vector<crypto::ProcId> ids{0, 1, 2, 3};
  crypto::Signer signer(&scheme, ids);
  const crypto::Verifier verifier(&scheme);
  ba::SignedValue sv = ba::make_signed(1, signer, 0);
  sv = ba::extend(std::move(sv), signer, 1);
  sv = ba::extend(std::move(sv), signer, 2);

  VerifyCache cache;
  EXPECT_TRUE(ba::verify_chain(sv, verifier, &cache));
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_TRUE(ba::verify_chain(sv, verifier, &cache));
  EXPECT_EQ(cache.hits(), 3u);

  ba::SignedValue forged = sv;
  forged.chain[1].sig[10] ^= 0x04;
  EXPECT_FALSE(ba::verify_chain(forged, verifier, &cache));
}

TEST(VerifyCacheEndToEnd, RelayingProtocolsHitUnderByzantineLoad) {
  // Full simulations with Byzantine senders: agreement must hold (the
  // cache never admits a forgery) and relayed chains must actually hit.
  struct Case {
    ba::Protocol protocol;
    std::size_t n, t;
  };
  std::vector<Case> cases;
  cases.push_back({*ba::find_protocol("dolev-strong"), 8, 2});
  cases.push_back({*ba::find_protocol("dolev-strong-relay"), 8, 2});
  cases.push_back({ba::make_alg3_protocol(3), 24, 2});
  cases.push_back({ba::make_alg5_protocol(3), 30, 2});
  for (const Case& c : cases) {
    const ba::BAConfig config{c.n, c.t, 0, 1};
    const auto result = test::expect_agreement(
        c.protocol, config, /*seed=*/5,
        {test::chaos(static_cast<ba::ProcId>(c.n - 1), 13),
         test::chaos(static_cast<ba::ProcId>(c.n - 2), 29)});
    EXPECT_GT(result.metrics.chain_cache_hits(), 0u) << c.protocol.name;
  }
}

// ---------------------------------------------------------------------------
// StripedVerifyCache: the shared, lock-striped store the daemon endpoints
// put under every concurrent instance. Realm scoping must make each
// session behave exactly like a private VerifyCache — same verdicts, same
// hit/miss sequence — and the per-stripe counters must account for every
// lookup exactly once, no matter how many threads hammer the stripes.

TEST(StripedVerifyCache, SessionEquivalentToPrivateCache) {
  crypto::KeyRegistry scheme(6, 11);
  std::vector<crypto::ProcId> ids{0, 1, 2, 3, 4, 5};
  crypto::Signer signer(&scheme, ids);
  const crypto::Verifier verifier(&scheme);
  ba::SignedValue sv = ba::make_signed(1, signer, 0);
  for (crypto::ProcId p = 1; p < 5; ++p) {
    sv = ba::extend(std::move(sv), signer, p);
  }
  ba::SignedValue forged = sv;
  forged.chain[2].sig[1] ^= 0x10;

  crypto::StripedVerifyCache striped(4);
  auto session = striped.session(77);
  VerifyCache reference;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(ba::verify_chain(sv, verifier, &session),
              ba::verify_chain(sv, verifier, &reference));
    EXPECT_EQ(ba::verify_chain(forged, verifier, &session),
              ba::verify_chain(forged, verifier, &reference));
    EXPECT_EQ(session.hits(), reference.hits()) << "round " << round;
    EXPECT_EQ(session.misses(), reference.misses()) << "round " << round;
  }
  EXPECT_EQ(session.size(), reference.size());
}

TEST(StripedVerifyCache, RealmsAreIsolated) {
  crypto::StripedVerifyCache striped(2);
  auto a = striped.session(1);
  auto b = striped.session(2);
  const Digest prefix = digest_of(0x44);
  const Digest extended = digest_of(0x55);
  const Bytes sig{9, 9, 9};
  a.insert(3, prefix, sig, extended);
  EXPECT_TRUE(a.lookup(3, prefix, sig).has_value());
  // Same triple, different realm: must miss — instance isolation is what
  // keeps per-instance metrics equal to solo runs.
  EXPECT_FALSE(b.lookup(3, prefix, sig).has_value());
  EXPECT_EQ(striped.size(), 1u);
}

TEST(StripedVerifyCache, ConcurrentSessionsExactCountersAndEquivalence) {
  // kThreads instances verify overlapping chains concurrently, each in its
  // own realm session of one shared 4-stripe store. Afterwards: every
  // session's counters must equal a private cache's on the same workload
  // (equivalence), and the per-stripe counters must sum to exactly the
  // total session traffic (no lookup lost or double-counted under
  // contention). Run under TSan this also proves the striping is race-free.
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 5;
  crypto::KeyRegistry scheme(6, 23);
  std::vector<crypto::ProcId> ids{0, 1, 2, 3, 4, 5};
  crypto::Signer signer(&scheme, ids);
  const crypto::Verifier verifier(&scheme);

  // Shared workload: all threads verify the same two chains (overlap), so
  // stripes see same-key traffic from different realms.
  ba::SignedValue chain_a = ba::make_signed(1, signer, 0);
  for (crypto::ProcId p = 1; p < 5; ++p) {
    chain_a = ba::extend(std::move(chain_a), signer, p);
  }
  ba::SignedValue chain_b = ba::make_signed(0, signer, 5);
  chain_b = ba::extend(std::move(chain_b), signer, 4);
  ba::SignedValue forged = chain_a;
  forged.chain[1].sig[0] ^= 0x01;

  crypto::StripedVerifyCache striped(4);
  std::vector<std::size_t> hits(kThreads, 0);
  std::vector<std::size_t> misses(kThreads, 0);
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto session = striped.session(1000 + i);
      for (int round = 0; round < kRounds; ++round) {
        if (!ba::verify_chain(chain_a, verifier, &session)) ++failures[i];
        if (!ba::verify_chain(chain_b, verifier, &session)) ++failures[i];
        if (ba::verify_chain(forged, verifier, &session)) ++failures[i];
      }
      hits[i] = session.hits();
      misses[i] = session.misses();
    });
  }
  for (std::thread& t : threads) t.join();

  // Reference: the identical workload against a private cache.
  VerifyCache reference;
  for (int round = 0; round < kRounds; ++round) {
    EXPECT_TRUE(ba::verify_chain(chain_a, verifier, &reference));
    EXPECT_TRUE(ba::verify_chain(chain_b, verifier, &reference));
    EXPECT_FALSE(ba::verify_chain(forged, verifier, &reference));
  }

  std::size_t session_total = 0;
  for (std::size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(failures[i], 0) << "thread " << i;
    EXPECT_EQ(hits[i], reference.hits()) << "thread " << i;
    EXPECT_EQ(misses[i], reference.misses()) << "thread " << i;
    session_total += hits[i] + misses[i];
  }

  std::uint64_t stripe_total = 0;
  std::uint64_t stripe_entries = 0;
  for (std::size_t s = 0; s < striped.stripe_count(); ++s) {
    const auto stats = striped.stripe_stats(s);
    stripe_total += stats.hits + stats.misses;
    stripe_entries += stats.entries;
  }
  EXPECT_EQ(stripe_total, session_total);
  EXPECT_EQ(stripe_entries, striped.size());
  // Realm scoping: each thread inserted its own copies of the valid links.
  EXPECT_EQ(striped.size(), kThreads * reference.size());
}

}  // namespace
}  // namespace dr
