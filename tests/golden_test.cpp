// Golden regression suite: every run in this repository is a deterministic
// function of (protocol, config, seed, faults), so exact information-
// exchange counts can be pinned. A change to any of these numbers means a
// protocol's behaviour changed — either an intentional improvement (update
// the table and explain in the commit) or an accidental regression.
//
// All rows: failure-free, transmitter 0, seed 1, HMAC scheme.
#include <gtest/gtest.h>

#include "test_util.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::Value;

struct Golden {
  ba::Protocol protocol;
  std::size_t n;
  std::size_t t;
  Value value;
  std::size_t messages;
  std::size_t signatures;
  std::size_t bytes;
  sim::PhaseNum last_phase;
};

class GoldenCounts : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenCounts, ExactInformationExchange) {
  const Golden& g = GetParam();
  const BAConfig config{g.n, g.t, 0, g.value};
  ASSERT_TRUE(g.protocol.supports(config));
  const auto result = ba::run_scenario(g.protocol, config, 1);
  const auto check = sim::check_byzantine_agreement(result, 0, g.value);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
  EXPECT_EQ(result.metrics.messages_by_correct(), g.messages);
  EXPECT_EQ(result.metrics.signatures_by_correct(), g.signatures);
  EXPECT_EQ(result.metrics.bytes_by_correct(), g.bytes);
  EXPECT_EQ(result.metrics.last_active_phase(), g.last_phase);
}

std::vector<Golden> golden_rows() {
  return {
      {*ba::find_protocol("dolev-strong"), 7, 2, 1,
       42, 78, 2736, 2},
      {*ba::find_protocol("dolev-strong-relay"), 12, 2, 1,
       68, 125, 4386, 2},
      {*ba::find_protocol("eig"), 7, 2, 1,
       78, 0, 1140, 3},
      {*ba::find_protocol("phase-king"), 13, 3, 1,
       684, 0, 684, 9},
      {*ba::find_protocol("alg1"), 9, 4, 1,
       40, 72, 2528, 2},
      {*ba::find_protocol("alg1-mv"), 9, 4, 7,
       40, 72, 2528, 2},
      {*ba::find_protocol("alg2"), 9, 4, 1,
       100, 402, 13868, 15},
      {ba::make_alg3_protocol(4), 40, 3, 1,
       198, 456, 15900, 13},
      {ba::make_alg5_protocol(3), 48, 2, 1,
       775, 3824, 152542, 24},
      {ba::make_alg5_protocol(7), 70, 2, 0,
       895, 5368, 219232, 41},
  };
}

std::string row_name(const ::testing::TestParamInfo<Golden>& info) {
  std::string tag = info.param.protocol.name + "_n" +
                    std::to_string(info.param.n);
  for (char& c : tag) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return tag;
}

INSTANTIATE_TEST_SUITE_P(Pinned, GoldenCounts,
                         ::testing::ValuesIn(golden_rows()), row_name);

TEST(GoldenCounts, CrossSeedStabilityOfCounts) {
  // Counts are seed-independent failure-free (only signatures' bytes
  // change with keys, and signature *sizes* are fixed for HMAC).
  const BAConfig config{9, 4, 0, 1};
  const auto a = ba::run_scenario(*ba::find_protocol("alg2"), config, 1);
  const auto b = ba::run_scenario(*ba::find_protocol("alg2"), config, 999);
  EXPECT_EQ(a.metrics.messages_by_correct(),
            b.metrics.messages_by_correct());
  EXPECT_EQ(a.metrics.signatures_by_correct(),
            b.metrics.signatures_by_correct());
  EXPECT_EQ(a.metrics.bytes_by_correct(), b.metrics.bytes_by_correct());
}

}  // namespace
}  // namespace dr
