#include "hist/history.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace dr::hist {
namespace {

Edge edge(ProcId from, ProcId to, std::string_view label) {
  return Edge{from, to, to_bytes(label)};
}

TEST(PhaseGraph, InEdgesAndOutEdges) {
  PhaseGraph g;
  g.add(edge(0, 1, "a"));
  g.add(edge(2, 1, "b"));
  g.add(edge(1, 0, "c"));
  const auto in1 = g.in_edges(1);
  ASSERT_EQ(in1.size(), 2u);
  EXPECT_EQ(in1[0].from, 0u);
  EXPECT_EQ(in1[1].from, 2u);
  const auto out1 = g.out_edges(1);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1[0].to, 0u);
}

TEST(PhaseGraph, EqualityIgnoresInsertionOrder) {
  PhaseGraph a;
  a.add(edge(0, 1, "x"));
  a.add(edge(1, 2, "y"));
  PhaseGraph b;
  b.add(edge(1, 2, "y"));
  b.add(edge(0, 1, "x"));
  EXPECT_EQ(a, b);
}

TEST(PhaseGraph, EqualityDetectsLabelDifference) {
  PhaseGraph a;
  a.add(edge(0, 1, "x"));
  PhaseGraph b;
  b.add(edge(0, 1, "y"));
  EXPECT_FALSE(a == b);
}

TEST(History, RecordAndQueryPhases) {
  History h;
  h.record(2, edge(0, 1, "late"));
  h.record(1, edge(1, 0, "early"));
  EXPECT_EQ(h.phases(), 2u);
  EXPECT_EQ(h.phase(1).edges().size(), 1u);
  EXPECT_EQ(h.phase(2).edges().size(), 1u);
  EXPECT_TRUE(h.phase(3).edges().empty());  // missing phases are empty
}

TEST(History, InitialValueOnlyVisibleToTransmitter) {
  History h;
  h.set_initial(3, to_bytes("v"));
  h.record(1, edge(3, 0, "m"));
  const History for_transmitter = h.individual(3);
  EXPECT_TRUE(for_transmitter.initial_value().has_value());
  const History for_other = h.individual(0);
  EXPECT_FALSE(for_other.initial_value().has_value());
}

TEST(History, IndividualSubhistoryKeepsOnlyInEdges) {
  History h;
  h.record(1, edge(0, 1, "to1"));
  h.record(1, edge(0, 2, "to2"));
  h.record(2, edge(2, 1, "to1again"));
  const History p1 = h.individual(1);
  EXPECT_EQ(p1.phases(), 2u);
  EXPECT_EQ(p1.phase(1).edges().size(), 1u);
  EXPECT_EQ(p1.phase(1).edges()[0].to, 1u);
  EXPECT_EQ(p1.phase(2).edges().size(), 1u);
  const History p2 = h.individual(2);
  EXPECT_EQ(p2.phase(1).edges().size(), 1u);
  EXPECT_TRUE(p2.phase(2).edges().empty());
}

TEST(History, IndividualSubhistoriesDetectIndistinguishability) {
  // Two different global histories in which processor 1 sees the same thing.
  History a;
  a.record(1, edge(0, 1, "m"));
  a.record(1, edge(0, 2, "x"));
  History b;
  b.record(1, edge(0, 1, "m"));
  b.record(1, edge(0, 2, "different"));
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.individual(1), b.individual(1));
  EXPECT_FALSE(a.individual(2) == b.individual(2));
}

TEST(History, PrefixTruncates) {
  History h;
  h.set_initial(0, to_bytes("v"));
  h.record(1, edge(0, 1, "a"));
  h.record(2, edge(1, 2, "b"));
  h.record(3, edge(2, 0, "c"));
  const History p = h.prefix(2);
  EXPECT_EQ(p.phases(), 2u);
  EXPECT_EQ(p.phase(1), h.phase(1));
  EXPECT_EQ(p.phase(2), h.phase(2));
  EXPECT_TRUE(p.initial_value().has_value());
  // Prefix longer than the history is the history itself.
  EXPECT_EQ(h.prefix(10), h);
}

TEST(History, CountEdges) {
  History h;
  h.record(1, edge(0, 1, "a"));
  h.record(1, edge(5, 2, "b"));
  h.record(2, edge(5, 0, "c"));
  EXPECT_EQ(h.count_edges([](const Edge&) { return true; }), 3u);
  EXPECT_EQ(h.count_edges([](const Edge& e) { return e.from == 5; }), 2u);
  EXPECT_EQ(h.count_edges([](const Edge& e) { return e.to == 1; }), 1u);
}

TEST(History, SelfLoopAllowedButQueryable) {
  // The model never produces self-edges, but the container handles them.
  History h;
  h.record(1, edge(1, 1, "self"));
  EXPECT_EQ(h.individual(1).phase(1).edges().size(), 1u);
}

}  // namespace
}  // namespace dr::hist
