// The multithreaded runner must be bit-identical to the serial one.
#include <gtest/gtest.h>

#include "test_util.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::ScenarioFault;
using ba::ScenarioOptions;

struct Case {
  std::string label;
  ba::Protocol protocol;
  std::size_t n;
  std::size_t t;
};

class ParallelRunner : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelRunner, MatchesSerialExactly) {
  const std::size_t threads = GetParam();
  std::vector<Case> cases;
  cases.push_back({"ds", *ba::find_protocol("dolev-strong"), 12, 3});
  cases.push_back({"pk", *ba::find_protocol("phase-king"), 21, 5});
  cases.push_back({"a3", ba::make_alg3_protocol(4), 40, 3});
  cases.push_back({"a5", ba::make_alg5_protocol(3), 48, 2});
  for (const Case& c : cases) {
    const BAConfig config{c.n, c.t, 0, 1};
    std::vector<ScenarioFault> faults;
    faults.push_back(test::silent(static_cast<ba::ProcId>(c.n - 1)));
    if (c.t >= 2) faults.push_back(test::chaos(2, 77));

    ScenarioOptions serial;
    serial.record_history = true;
    ScenarioOptions parallel = serial;
    parallel.threads = threads;

    const auto a = ba::run_scenario(c.protocol, config, serial, faults);
    const auto b = ba::run_scenario(c.protocol, config, parallel, faults);
    EXPECT_EQ(a.decisions, b.decisions) << c.label;
    EXPECT_TRUE(a.history == b.history) << c.label;
    EXPECT_EQ(a.metrics.messages_by_correct(),
              b.metrics.messages_by_correct())
        << c.label;
    EXPECT_EQ(a.metrics.signatures_by_correct(),
              b.metrics.signatures_by_correct())
        << c.label;
    EXPECT_EQ(a.metrics.per_phase(), b.metrics.per_phase()) << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelRunner,
                         ::testing::Values(2, 3, 8, 64),
                         [](const auto& param_info) {
                           return "threads" +
                                  std::to_string(param_info.param);
                         });

TEST(ParallelRunner, StatefulSchemesFallBackToSerial) {
  // With the Merkle scheme, threads > 1 must silently run serial (signing
  // is stateful) and still be correct.
  ScenarioOptions options;
  options.scheme = sim::SchemeKind::kMerkle;
  options.merkle_height = 4;
  options.threads = 8;
  const auto result = ba::run_scenario(*ba::find_protocol("dolev-strong"),
                                       BAConfig{5, 1, 0, 1}, options,
                                       {test::silent(4)});
  const auto check = sim::check_byzantine_agreement(result, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

}  // namespace
}  // namespace dr
