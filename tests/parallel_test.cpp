// The multithreaded runner must be bit-identical to the serial one.
#include <gtest/gtest.h>

#include "sim/faults.h"
#include "test_util.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::ScenarioFault;
using ba::ScenarioOptions;

struct Case {
  std::string label;
  ba::Protocol protocol;
  std::size_t n;
  std::size_t t;
};

class ParallelRunner : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelRunner, MatchesSerialExactly) {
  const std::size_t threads = GetParam();
  std::vector<Case> cases;
  cases.push_back({"ds", *ba::find_protocol("dolev-strong"), 12, 3});
  cases.push_back({"pk", *ba::find_protocol("phase-king"), 21, 5});
  cases.push_back({"a3", ba::make_alg3_protocol(4), 40, 3});
  cases.push_back({"a5", ba::make_alg5_protocol(3), 48, 2});
  for (const Case& c : cases) {
    const BAConfig config{c.n, c.t, 0, 1};
    std::vector<ScenarioFault> faults;
    faults.push_back(test::silent(static_cast<ba::ProcId>(c.n - 1)));
    if (c.t >= 2) faults.push_back(test::chaos(2, 77));

    ScenarioOptions serial;
    serial.record_history = true;
    ScenarioOptions parallel = serial;
    parallel.threads = threads;

    const auto a = ba::run_scenario(c.protocol, config, serial, faults);
    const auto b = ba::run_scenario(c.protocol, config, parallel, faults);
    EXPECT_EQ(a.decisions, b.decisions) << c.label;
    EXPECT_TRUE(a.history == b.history) << c.label;
    EXPECT_EQ(a.metrics.chain_cache_hits(), b.metrics.chain_cache_hits())
        << c.label;
    EXPECT_EQ(a.metrics.chain_cache_misses(),
              b.metrics.chain_cache_misses())
        << c.label;
    // Every counter, including per-phase tallies and the verification-cache
    // stats, must match bit for bit.
    EXPECT_TRUE(a.metrics == b.metrics) << c.label;
  }
}

// Every registry protocol, several seeds: the parallel runner must produce
// the complete RunResult — decisions, fault flags, history, phase count and
// all metrics — bit-identical to the serial one.
TEST(ParallelRunner, EveryRegistryProtocolBitIdentical) {
  std::vector<ba::Protocol> protocols = ba::protocols();
  protocols.push_back(ba::make_alg3_protocol(3));
  protocols.push_back(ba::make_alg3_mv_protocol(3));
  protocols.push_back(ba::make_alg5_protocol(3));
  protocols.push_back(ba::make_alg5_mv_protocol(3));
  const std::vector<BAConfig> candidates{
      {12, 3, 0, 1}, {10, 2, 0, 1}, {7, 2, 0, 1}, {30, 2, 0, 1},
      {40, 3, 0, 1}, {5, 1, 0, 1},
  };
  std::size_t tested = 0;
  for (const auto& protocol : protocols) {
    const BAConfig* config = nullptr;
    for (const auto& candidate : candidates) {
      if (protocol.supports(candidate)) {
        config = &candidate;
        break;
      }
    }
    if (config == nullptr) continue;
    ++tested;
    std::vector<ScenarioFault> faults;
    faults.push_back(test::silent(static_cast<ba::ProcId>(config->n - 1)));
    if (config->t >= 2) faults.push_back(test::chaos(1, 31));
    for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
      ScenarioOptions serial;
      serial.seed = seed;
      serial.record_history = true;
      ScenarioOptions parallel = serial;
      parallel.threads = 4;
      const auto a = ba::run_scenario(protocol, *config, serial, faults);
      const auto b = ba::run_scenario(protocol, *config, parallel, faults);
      EXPECT_EQ(a.decisions, b.decisions) << protocol.name << " s=" << seed;
      EXPECT_EQ(a.faulty, b.faulty) << protocol.name << " s=" << seed;
      EXPECT_EQ(a.phases_run, b.phases_run) << protocol.name << " s=" << seed;
      EXPECT_TRUE(a.history == b.history) << protocol.name << " s=" << seed;
      EXPECT_TRUE(a.metrics == b.metrics) << protocol.name << " s=" << seed;
    }
  }
  // Guard against the candidate list silently matching nothing.
  EXPECT_GE(tested, 7u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelRunner,
                         ::testing::Values(2, 3, 8, 64),
                         [](const auto& param_info) {
                           return "threads" +
                                  std::to_string(param_info.param);
                         });

TEST(ParallelRunner, HashBasedSchemesRunParallelBitIdentical) {
  // Merkle/WOTS signing consumes per-processor key state, but each correct
  // processor only touches its own keys, so the pool steps them
  // concurrently; the faulty coalition (one shared stateful Signer) is
  // stepped serially. Serial and parallel runs must agree bit for bit.
  for (const sim::SchemeKind scheme :
       {sim::SchemeKind::kMerkle, sim::SchemeKind::kWots}) {
    ScenarioOptions serial;
    serial.scheme = scheme;
    serial.merkle_height = 4;
    serial.record_history = true;
    ScenarioOptions parallel = serial;
    parallel.threads = 8;
    const BAConfig config{5, 1, 0, 1};
    const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
    const auto a =
        ba::run_scenario(protocol, config, serial, {test::silent(4)});
    const auto b =
        ba::run_scenario(protocol, config, parallel, {test::silent(4)});
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_TRUE(a.history == b.history);
    EXPECT_TRUE(a.metrics == b.metrics);
    const auto check = sim::check_byzantine_agreement(b, 0, 1);
    EXPECT_TRUE(check.agreement);
    EXPECT_TRUE(check.validity);
  }
}

TEST(ParallelRunner, FaultPlanParityBitIdentical) {
  // Scripted transport faults must not disturb parallel determinism: the
  // fault stream is keyed by message coordinates (from, to, phase), never
  // by arrival order, and the perturbed-processor accounting is a set, so
  // the racy worker schedule cannot leak into any observable.
  const std::vector<sim::FaultRule> rules{
      {sim::FaultKind::kDrop, 1, sim::kAnyProc, 2},
      {sim::FaultKind::kDuplicate, sim::kAnyProc, 3, sim::kAnyPhase},
      {sim::FaultKind::kCorrupt, 0, sim::kAnyProc, 1},
      {sim::FaultKind::kOmitReceive, sim::kAnyProc, 5, 3},
  };
  std::vector<Case> cases;
  cases.push_back({"ds", *ba::find_protocol("dolev-strong"), 12, 3});
  cases.push_back({"pk", *ba::find_protocol("phase-king"), 15, 3});
  cases.push_back({"a5", ba::make_alg5_protocol(3), 48, 2});
  for (const Case& c : cases) {
    const BAConfig config{c.n, c.t, 0, 1};
    sim::FaultPlan serial_plan(rules, 7);
    sim::FaultPlan parallel_plan(rules, 7);
    ScenarioOptions serial;
    serial.record_history = true;
    serial.fault_plan = &serial_plan;
    ScenarioOptions parallel = serial;
    parallel.threads = 4;
    parallel.fault_plan = &parallel_plan;
    const auto a = ba::run_scenario(c.protocol, config, serial, {});
    const auto b = ba::run_scenario(c.protocol, config, parallel, {});
    EXPECT_EQ(a.decisions, b.decisions) << c.label;
    EXPECT_TRUE(a.history == b.history) << c.label;
    EXPECT_TRUE(a.metrics == b.metrics) << c.label;
    EXPECT_EQ(serial_plan.perturbed(), parallel_plan.perturbed()) << c.label;
  }
}

}  // namespace
}  // namespace dr
