// The daemon's wire protocol: every message codec round-trips exactly,
// the shared FrameChunker delimits svc streams split at every offset and
// leaves truncations pending at every offset, and the zero-copy kMesh
// envelope is bit-identical to its flat encoding — the receiving side
// cannot tell a scatter/gather send from a contiguous one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codec/codec.h"
#include "codec/crc32.h"
#include "net/frame.h"
#include "svc/wire.h"
#include "util/bytes.h"

namespace dr::svc {
namespace {

/// Decodes one sealed message and re-encodes it through `reencode`; the
/// bytes must match exactly (decode-encode identity, field by field).
template <typename Decode, typename Reencode>
void expect_roundtrip(const Bytes& sealed, MsgType type, std::uint64_t id,
                      Decode&& decode, Reencode&& reencode) {
  // Strip the outer length | body | crc framing via the chunker the
  // daemon itself uses.
  net::FrameChunker chunker;
  Bytes body;
  std::size_t chunks = 0;
  std::size_t poisoned = 0;
  chunker.feed(
      sealed,
      [&](net::ChunkStatus status, ByteView view) {
        ASSERT_EQ(status, net::ChunkStatus::kBody);
        body.assign(view.begin(), view.end());
        ++chunks;
      },
      poisoned);
  ASSERT_EQ(chunks, 1u);
  ASSERT_EQ(poisoned, 0u);

  Reader r(body);
  const auto header = read_header(r);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, type);
  EXPECT_EQ(header->id, id);
  auto decoded = decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(reencode(*decoded), sealed);
}

SubmitRequest sample_request() {
  SubmitRequest req;
  req.protocol = "alg3[s=2]";
  req.config = {7, 2, 3, 41};
  req.seed = 1234567;
  req.plan_seed = 89;
  chaos::ScriptedFault chaos_fault;
  chaos_fault.kind = chaos::ScriptedKind::kChaos;
  chaos_fault.id = 2;
  chaos_fault.seed = 77;
  chaos_fault.send_prob = 0.375;
  chaos::ScriptedFault echo;
  echo.kind = chaos::ScriptedKind::kDelayedEcho;
  echo.id = 5;
  echo.delay = 2;
  req.scripted = {chaos_fault, echo};
  req.rules = {{sim::FaultKind::kDrop, 1, 2, 1},
               {sim::FaultKind::kCorrupt, sim::kAnyProc, 4, sim::kAnyPhase}};
  return req;
}

sim::Metrics sample_metrics() {
  sim::Metrics metrics(4);
  metrics.on_send(0, 1, 1, true, 3, 100);
  metrics.on_send(2, 3, 1, false, 1, 7);
  metrics.on_send(1, 2, 2, true, 0, 50);
  metrics.on_frame(true, 140);
  metrics.on_net_health(2, 1, 4, 1);
  metrics.on_chain_cache(10, 3);
  return metrics;
}

TEST(SvcWire, HelloRoundTrips) {
  Hello hello;
  hello.role = Role::kEndpoint;
  hello.proc = 6;
  hello.mesh_addr = "127.0.0.1:45123";
  expect_roundtrip(
      encode_hello(hello), MsgType::kHello, 0,
      [](Reader& r) { return decode_hello(r); },
      [](const Hello& h) { return encode_hello(h); });
}

TEST(SvcWire, PeersRoundTrips) {
  Peers peers;
  peers.addrs = {"127.0.0.1:1", "127.0.0.1:22", "10.0.0.3:45999"};
  expect_roundtrip(
      encode_peers(peers), MsgType::kPeers, 0,
      [](Reader& r) { return decode_peers(r); },
      [](const Peers& p) { return encode_peers(p); });
}

TEST(SvcWire, SubmitRoundTripsWithFaultSurface) {
  const SubmitRequest req = sample_request();
  expect_roundtrip(
      encode_submit(901, req), MsgType::kSubmit, 901,
      [](Reader& r) { return decode_submit(r); },
      [](const SubmitRequest& q) { return encode_submit(901, q); });

  // Field-level spot checks, including the bit-exact double.
  Bytes sealed = encode_submit(901, req);
  // Re-decode by hand for the field assertions.
  net::FrameChunker chunker;
  Bytes body;
  std::size_t poisoned = 0;
  chunker.feed(
      sealed,
      [&](net::ChunkStatus, ByteView view) {
        body.assign(view.begin(), view.end());
      },
      poisoned);
  Reader r(body);
  ASSERT_TRUE(read_header(r).has_value());
  const auto decoded = decode_submit(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->protocol, req.protocol);
  EXPECT_EQ(decoded->config.n, req.config.n);
  EXPECT_EQ(decoded->config.t, req.config.t);
  EXPECT_EQ(decoded->config.transmitter, req.config.transmitter);
  EXPECT_EQ(decoded->config.value, req.config.value);
  EXPECT_EQ(decoded->seed, req.seed);
  EXPECT_EQ(decoded->plan_seed, req.plan_seed);
  EXPECT_EQ(decoded->scripted, req.scripted);
  EXPECT_EQ(decoded->rules, req.rules);
}

TEST(SvcWire, StartCarriesTheSameBodyAsSubmit) {
  const SubmitRequest req = sample_request();
  expect_roundtrip(
      encode_start(17, req), MsgType::kStart, 17,
      [](Reader& r) { return decode_submit(r); },
      [](const SubmitRequest& q) { return encode_start(17, q); });
}

TEST(SvcWire, MetricsCodecIsAnIdentity) {
  const sim::Metrics metrics = sample_metrics();
  Writer w;
  metrics.encode(w);
  const Bytes first = std::move(w).take();
  Reader r(first);
  const auto decoded = sim::Metrics::decode(r);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(r.done());
  Writer again;
  decoded->encode(again);
  EXPECT_EQ(std::move(again).take(), first);
  EXPECT_EQ(decoded->messages_by_correct(), metrics.messages_by_correct());
  EXPECT_EQ(decoded->signatures_by_correct(),
            metrics.signatures_by_correct());
  EXPECT_EQ(decoded->net_send_retries(), metrics.net_send_retries());
  EXPECT_EQ(decoded->chain_cache_hits(), metrics.chain_cache_hits());
}

TEST(SvcWire, DoneRoundTrips) {
  EndpointDone done;
  done.p = 3;
  done.decided = true;
  done.decision = 987654321;
  done.metrics = sample_metrics();
  done.sync.frames.accepted = 12;
  done.sync.frames.bad_crc = 1;
  done.sync.stragglers = 2;
  done.sync.stale_frames = 3;
  done.sync.disconnects = 1;
  done.sync.link.reconnect_attempts = 5;
  done.sync.omission_faulty = {1, 4};
  done.perturbed = {0, 2};
  expect_roundtrip(
      encode_done(55, done), MsgType::kDone, 55,
      [](Reader& r) { return decode_done(r); },
      [](const EndpointDone& d) { return encode_done(55, d); });
}

TEST(SvcWire, DecisionRoundTrips) {
  DecisionResponse resp;
  resp.ok = true;
  resp.decisions = {Value{1}, std::nullopt, Value{1}, Value{0}};
  resp.scripted_faulty = {false, true, false, false};
  resp.metrics = sample_metrics();
  resp.sync.frames.accepted = 40;
  resp.perturbed = {1};
  resp.watchdog_fired = true;
  resp.unfinished = {2};
  expect_roundtrip(
      encode_decision(7001, resp), MsgType::kDecision, 7001,
      [](Reader& r) { return decode_decision(r); },
      [](const DecisionResponse& d) { return encode_decision(7001, d); });
}

TEST(SvcWire, ChunkerDelimitsSvcStreamSplitAtEveryOffset) {
  // Three sealed messages back to back; split the stream at every offset
  // and feed the two halves. The chunker must always produce exactly the
  // three bodies, in order, regardless of where the cut falls.
  Bytes stream;
  append(stream, encode_ready(4));
  append(stream, encode_submit(12, sample_request()));
  append(stream, encode_shutdown());

  std::vector<Bytes> reference;
  {
    net::FrameChunker chunker;
    std::size_t poisoned = 0;
    chunker.feed(
        stream,
        [&](net::ChunkStatus status, ByteView body) {
          ASSERT_EQ(status, net::ChunkStatus::kBody);
          reference.emplace_back(body.begin(), body.end());
        },
        poisoned);
    ASSERT_EQ(reference.size(), 3u);
  }

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    net::FrameChunker chunker;
    std::vector<Bytes> got;
    std::size_t poisoned = 0;
    const auto sink = [&](net::ChunkStatus status, ByteView body) {
      ASSERT_EQ(status, net::ChunkStatus::kBody) << "cut=" << cut;
      got.emplace_back(body.begin(), body.end());
    };
    chunker.feed(ByteView(stream.data(), cut), sink, poisoned);
    chunker.feed(ByteView(stream.data() + cut, stream.size() - cut), sink,
                 poisoned);
    EXPECT_EQ(got, reference) << "cut=" << cut;
    EXPECT_EQ(poisoned, 0u) << "cut=" << cut;
    EXPECT_FALSE(chunker.poisoned()) << "cut=" << cut;
    EXPECT_EQ(chunker.buffered(), 0u) << "cut=" << cut;
  }
}

TEST(SvcWire, ChunkerLeavesTruncationsPendingAtEveryOffset) {
  // A prefix of a message must never produce a body, never poison the
  // stream, and stay buffered so the remainder completes it later.
  const Bytes msg = encode_submit(3, sample_request());
  for (std::size_t len = 0; len < msg.size(); ++len) {
    net::FrameChunker chunker;
    std::size_t bodies = 0;
    std::size_t poisoned = 0;
    const auto sink = [&](net::ChunkStatus status, ByteView) {
      ASSERT_EQ(status, net::ChunkStatus::kBody);
      ++bodies;
    };
    chunker.feed(ByteView(msg.data(), len), sink, poisoned);
    EXPECT_EQ(bodies, 0u) << "len=" << len;
    EXPECT_FALSE(chunker.poisoned()) << "len=" << len;
    EXPECT_EQ(chunker.buffered(), len);
    // The tail completes it.
    chunker.feed(ByteView(msg.data() + len, msg.size() - len), sink,
                 poisoned);
    EXPECT_EQ(bodies, 1u) << "len=" << len;
    EXPECT_EQ(chunker.buffered(), 0u);
  }
}

TEST(SvcWire, ChunkerSkipsCorruptedBodyAndResyncs) {
  // A CRC mismatch invalidates the body but not the length prefix, so the
  // chunker reports it, skips the frame, and delimits the next one.
  Bytes stream = encode_ready(1);
  stream[stream.size() - 1] ^= 0xFF;  // break the CRC
  append(stream, encode_ready(2));
  net::FrameChunker chunker;
  std::size_t poisoned = 0;
  bool bad_crc = false;
  std::size_t bodies = 0;
  chunker.feed(
      stream,
      [&](net::ChunkStatus status, ByteView) {
        if (status == net::ChunkStatus::kBadCrc) bad_crc = true;
        if (status == net::ChunkStatus::kBody) ++bodies;
      },
      poisoned);
  EXPECT_TRUE(bad_crc);
  EXPECT_EQ(bodies, 1u);  // the follow-up message still gets through
  EXPECT_FALSE(chunker.poisoned());
  EXPECT_EQ(poisoned, 0u);
}

TEST(SvcWire, ChunkerPoisonsOversizedDeclaration) {
  // A declared length beyond the cap cannot be trusted as a resync
  // anchor: the stream is poisoned and later bytes are discarded.
  Bytes stream;
  put_u32le(stream, static_cast<std::uint32_t>(net::kMaxFrameBody + 5));
  stream.resize(stream.size() + 64, 0xAB);
  net::FrameChunker chunker;
  std::size_t poisoned = 0;
  bool oversized = false;
  chunker.feed(
      stream,
      [&](net::ChunkStatus status, ByteView) {
        if (status == net::ChunkStatus::kOversized) oversized = true;
      },
      poisoned);
  EXPECT_TRUE(oversized);
  EXPECT_TRUE(chunker.poisoned());
  EXPECT_GT(poisoned, 0u);
}

TEST(SvcWire, MeshEnvelopeIsBitIdenticalToFlatEncoding) {
  // Build an inner net frame as scatter/gather parts around a payload
  // handle, seal it into a kMesh envelope, and compare against the flat
  // reference: header + bytes(inner.concat()) sealed the ordinary way.
  // Above the inline capacity so the zero-copy check below observes a
  // shared buffer rather than an in-handle byte copy.
  const sim::Payload payload(Bytes(sim::Payload::kInlineCapacity + 8, 0x99));
  const net::Frame inner{net::FrameKind::kPayload, 2, 5, 7, payload};
  const net::WireParts inner_parts = net::encode_frame_parts(inner);
  ASSERT_EQ(inner_parts.concat(), encode_frame(inner));

  const net::WireParts sealed = seal_mesh_parts(31, inner_parts);

  Writer w;
  write_header(w, MsgType::kMesh, 31);
  w.bytes(inner_parts.concat());
  const Bytes flat = seal_body(std::move(w).take());
  EXPECT_EQ(sealed.concat(), flat);
  // The envelope holds the original payload buffer, not a copy — the
  // zero-copy claim, checked by handle identity.
  EXPECT_TRUE(sealed.payload.shares_buffer_with(payload));

  // And the receiving side recovers the inner frame verbatim.
  net::FrameChunker chunker;
  Bytes body;
  std::size_t poisoned = 0;
  chunker.feed(
      sealed.concat(),
      [&](net::ChunkStatus status, ByteView view) {
        ASSERT_EQ(status, net::ChunkStatus::kBody);
        body.assign(view.begin(), view.end());
      },
      poisoned);
  Reader r(body);
  const auto header = read_header(r);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, MsgType::kMesh);
  EXPECT_EQ(header->id, 31u);
  const auto recovered = decode_mesh(r);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, encode_frame(inner));
}

TEST(SvcWire, RejectsWrongVersion) {
  Bytes msg = encode_ready(1);
  // Byte 4 is the first body byte: the svc version.
  Writer w;
  write_header(w, MsgType::kReady, 1);
  Bytes body = std::move(w).take();
  body[0] = kSvcVersion + 1;
  const Bytes sealed = seal_body(body);
  net::FrameChunker chunker;
  Bytes out;
  std::size_t poisoned = 0;
  chunker.feed(
      sealed,
      [&](net::ChunkStatus, ByteView view) {
        out.assign(view.begin(), view.end());
      },
      poisoned);
  Reader r(out);
  EXPECT_FALSE(read_header(r).has_value());
}

}  // namespace
}  // namespace dr::svc
