#include "ba/tree.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dr::ba {
namespace {

TEST(AlphaFor, SmallestSquareAboveSixT) {
  EXPECT_EQ(alpha_for(1), 9u);     // 6*1=6 -> 3^2
  EXPECT_EQ(alpha_for(2), 16u);    // 12 -> 16
  EXPECT_EQ(alpha_for(4), 25u);    // 24 -> 25
  EXPECT_EQ(alpha_for(6), 49u);    // 36 -> 49 (must be strictly greater)
  EXPECT_EQ(alpha_for(8), 49u);    // 48 -> 49
  EXPECT_EQ(alpha_for(16), 100u);  // 96 -> 100
  EXPECT_EQ(alpha_for(32), 196u);  // 192 -> 196
}

TEST(TreeSize, PowersOfTwoMinusOne) {
  EXPECT_EQ(tree_size(1), 1u);
  EXPECT_EQ(tree_size(2), 3u);
  EXPECT_EQ(tree_size(3), 7u);
  EXPECT_EQ(tree_size(5), 31u);
}

TEST(PassiveTree, LevelsAndAncestors) {
  EXPECT_EQ(PassiveTree::level(1), 1u);
  EXPECT_EQ(PassiveTree::level(2), 2u);
  EXPECT_EQ(PassiveTree::level(3), 2u);
  EXPECT_EQ(PassiveTree::level(4), 3u);
  EXPECT_EQ(PassiveTree::level(7), 3u);
  EXPECT_EQ(PassiveTree::ancestor_at_level(7, 1), 1u);
  EXPECT_EQ(PassiveTree::ancestor_at_level(7, 2), 3u);
  EXPECT_EQ(PassiveTree::ancestor_at_level(7, 3), 7u);
  EXPECT_EQ(PassiveTree::ancestor_at_level(5, 2), 2u);
}

TEST(PassiveTree, SubtreeDepthAndNodes) {
  const PassiveTree tree{100, 3};  // 7 nodes, ids 100..106
  EXPECT_EQ(tree.size(), 7u);
  EXPECT_EQ(tree.subtree_depth(1), 3u);
  EXPECT_EQ(tree.subtree_depth(2), 2u);
  EXPECT_EQ(tree.subtree_depth(5), 1u);
  EXPECT_EQ(tree.subtree_nodes(1),
            (std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(tree.subtree_nodes(3), (std::vector<std::size_t>{3, 6, 7}));
  EXPECT_EQ(tree.subtree_nodes(6), (std::vector<std::size_t>{6}));
  EXPECT_EQ(tree.id_of(3), 102u);
  EXPECT_EQ(tree.node_of(102), 3u);
  EXPECT_TRUE(tree.contains(106));
  EXPECT_FALSE(tree.contains(107));
}

TEST(PassiveTree, SubtreeRootsAtDepth) {
  const PassiveTree tree{0, 3};
  EXPECT_EQ(tree.subtree_roots_at_depth(3), (std::vector<std::size_t>{1}));
  EXPECT_EQ(tree.subtree_roots_at_depth(2), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(tree.subtree_roots_at_depth(1),
            (std::vector<std::size_t>{4, 5, 6, 7}));
  EXPECT_TRUE(tree.subtree_roots_at_depth(4).empty());
  EXPECT_TRUE(tree.subtree_roots_at_depth(0).empty());
}

TEST(Forest, BuildPartitionsAllPassives) {
  for (const auto& [n, t, s] :
       {std::tuple{50u, 2u, 7u}, {100u, 4u, 7u}, {33u, 2u, 3u},
        {200u, 8u, 15u}, {49u, 8u, 7u}, {60u, 2u, 1u}}) {
    const Forest f = Forest::build(n, t, s);
    EXPECT_EQ(f.alpha, alpha_for(t));
    std::size_t covered = 0;
    ProcId expected_next = static_cast<ProcId>(f.alpha);
    for (const PassiveTree& tree : f.trees) {
      EXPECT_EQ(tree.first_id, expected_next);
      expected_next += static_cast<ProcId>(tree.size());
      covered += tree.size();
      EXPECT_GE(tree.depth, 1u);
      EXPECT_LE(tree.size(), tree_size(f.lambda));
    }
    EXPECT_EQ(covered, f.passive_count()) << "n=" << n << " t=" << t;
    EXPECT_EQ(expected_next, n);
  }
}

TEST(Forest, LambdaMatchesTargetSize) {
  EXPECT_EQ(Forest::build(100, 2, 7).lambda, 3u);
  EXPECT_EQ(Forest::build(100, 2, 8).lambda, 3u);   // 2^4-1=15 > 8
  EXPECT_EQ(Forest::build(100, 2, 15).lambda, 4u);
  EXPECT_EQ(Forest::build(100, 2, 1).lambda, 1u);
}

TEST(Forest, TreeOfLookup) {
  const Forest f = Forest::build(40, 2, 7);  // alpha = 16, 24 passives
  EXPECT_EQ(f.tree_of(0), nullptr);
  EXPECT_EQ(f.tree_of(15), nullptr);
  const PassiveTree* first = f.tree_of(16);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->first_id, 16u);
  EXPECT_EQ(first->depth, 3u);
  // 24 passives = 7 + 7 + 7 + 3: four trees.
  ASSERT_EQ(f.trees.size(), 4u);
  EXPECT_EQ(f.trees[3].depth, 2u);
  const PassiveTree* last = f.tree_of(39);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last, &f.trees[3]);
  EXPECT_EQ(f.tree_of(40), nullptr);
  EXPECT_EQ(f.max_depth(), 3u);
}

TEST(Forest, RemainderDecomposition) {
  // 5 passives with lambda = 3: 5 = 3 + 1 + 1.
  const Forest f = Forest::build(21, 1, 7);  // alpha = 9, 12 passives
  // 12 = 7 + 3 + 1 + 1
  std::vector<std::size_t> sizes;
  for (const auto& tree : f.trees) sizes.push_back(tree.size());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{7, 3, 1, 1}));
}

TEST(Forest, NoPassives) {
  const Forest f = Forest::build(9, 1, 7);
  EXPECT_TRUE(f.trees.empty());
  EXPECT_EQ(f.max_depth(), 0u);
  EXPECT_EQ(f.passive_count(), 0u);
}

}  // namespace
}  // namespace dr::ba
