#include "ba/dolev_strong.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::crash;
using test::delayed_echo;
using test::equivocator;
using test::expect_agreement;
using test::silent;

class DolevStrongSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t,
                                                 std::size_t, Value>> {};

TEST_P(DolevStrongSweep, FailureFreeAgreement) {
  const auto& [name, n, t, value] = GetParam();
  const Protocol& protocol = *find_protocol(name);
  expect_agreement(protocol, BAConfig{n, t, 0, value}, 1);
}

TEST_P(DolevStrongSweep, SilentFaultsAgreement) {
  const auto& [name, n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  const Protocol& protocol = *find_protocol(name);
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(n - 1 - i)));
  }
  expect_agreement(protocol, BAConfig{n, t, 0, value}, 1, faults);
}

TEST_P(DolevStrongSweep, CrashingTransmitterStillAgrees) {
  const auto& [name, n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  const Protocol& protocol = *find_protocol(name);
  const BAConfig config{n, t, 0, value};
  // Crash right after the first phase: some processors got the value, the
  // agreement property (not validity toward a faulty transmitter) must hold.
  const auto result =
      ba::run_scenario(protocol, config, 1, {crash(protocol, 0, 2)});
  const auto check = sim::check_byzantine_agreement(result, 0, value);
  EXPECT_TRUE(check.agreement) << name << " n=" << n << " t=" << t;
}

TEST_P(DolevStrongSweep, RandomByzantineAgreement) {
  const auto& [name, n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  const Protocol& protocol = *find_protocol(name);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<ScenarioFault> faults;
    for (std::size_t i = 0; i < t; ++i) {
      faults.push_back(
          chaos(static_cast<ProcId>(n - 1 - i), seed * 1000 + i));
    }
    expect_agreement(protocol, BAConfig{n, t, 0, value}, seed, faults);
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<DolevStrongSweep::ParamType>& info) {
  std::string tag = std::get<0>(info.param) + "_n" +
                    std::to_string(std::get<1>(info.param)) + "_t" +
                    std::to_string(std::get<2>(info.param)) + "_v" +
                    std::to_string(std::get<3>(info.param));
  for (char& c : tag) {
    if (c == '-') c = '_';
  }
  return tag;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DolevStrongSweep,
    ::testing::Combine(::testing::Values("dolev-strong",
                                         "dolev-strong-relay"),
                       ::testing::Values(4, 7, 10),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(Value{0}, Value{1}, Value{42})),
    sweep_name);

TEST(DolevStrong, EquivocatingTransmitterForcesCommonDefault) {
  const Protocol& protocol = *find_protocol("dolev-strong");
  const BAConfig config{7, 2, 0, 0};
  for (const auto& ones : {std::set<ProcId>{1}, std::set<ProcId>{1, 2, 3},
                           std::set<ProcId>{1, 2, 3, 4, 5}}) {
    const auto result =
        ba::run_scenario(protocol, config, 1, {equivocator(ones)});
    const auto check = sim::check_byzantine_agreement(result, 0, 0);
    EXPECT_TRUE(check.agreement);
    // With a two-faced transmitter every correct processor must extract
    // both values and fall back to the default.
    EXPECT_EQ(check.agreed_value, Value{kDefaultValue});
  }
}

TEST(DolevStrong, EquivocationWithColludingRelayHolds) {
  // The transmitter equivocates and a colluding processor stays silent to
  // starve propagation; agreement must still hold.
  const Protocol& protocol = *find_protocol("dolev-strong");
  const BAConfig config{7, 2, 0, 0};
  const auto result = ba::run_scenario(
      protocol, config, 1, {equivocator({1, 2}), silent(6)});
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement);
}

TEST(DolevStrong, MidProtocolRelayCrashesTolerated) {
  // Relays that follow the protocol for a while and then crash are the
  // benign end of the Byzantine spectrum; both variants must absorb t of
  // them at staggered phases.
  for (const char* name : {"dolev-strong", "dolev-strong-relay"}) {
    const Protocol& protocol = *find_protocol(name);
    const BAConfig config{7, 2, 0, 1};
    expect_agreement(protocol, config, 1,
                     {crash(protocol, 3, 2), crash(protocol, 5, 3)});
  }
}

TEST(DolevStrong, DelayedEchoFaultsTolerated) {
  // Echoing stale chains one or two phases late must not re-open
  // acceptance: the phase-labelled rule requires |chain| == phase.
  for (const char* name : {"dolev-strong", "dolev-strong-relay"}) {
    const Protocol& protocol = *find_protocol(name);
    for (Value value : {Value{0}, Value{1}}) {
      expect_agreement(protocol, BAConfig{7, 2, 0, value}, 1,
                       {delayed_echo(3, 1), delayed_echo(5, 2)});
    }
  }
}

TEST(DolevStrong, BroadcastMessageCountWithinBound) {
  for (std::size_t t : {1u, 2u, 3u}) {
    const std::size_t n = 3 * t + 1;
    const Protocol& protocol = *find_protocol("dolev-strong");
    const auto result =
        expect_agreement(protocol, BAConfig{n, t, 0, 1}, 1);
    EXPECT_LE(result.metrics.messages_by_correct(),
              bounds::dolev_strong_broadcast_message_bound(n));
  }
}

TEST(DolevStrong, RelayVariantUsesFewerMessagesAtLargeN) {
  const std::size_t n = 60;
  const std::size_t t = 2;
  const auto broadcast = expect_agreement(
      *find_protocol("dolev-strong"), BAConfig{n, t, 0, 1}, 1);
  const auto relay = expect_agreement(
      *find_protocol("dolev-strong-relay"), BAConfig{n, t, 0, 1}, 1);
  EXPECT_LT(relay.metrics.messages_by_correct(),
            broadcast.metrics.messages_by_correct());
  EXPECT_LE(relay.metrics.messages_by_correct(),
            bounds::dolev_strong_relay_message_bound(n, t));
}

TEST(DolevStrong, PhaseCountMatchesTheory) {
  const std::size_t n = 7;
  const std::size_t t = 2;
  const auto result = expect_agreement(*find_protocol("dolev-strong"),
                                       BAConfig{n, t, 0, 1}, 1);
  // Failure-free: transmitter phase 1, one relay wave at phase 2.
  EXPECT_LE(result.metrics.last_active_phase(), t + 1);
}

TEST(DolevStrongRelayAblation, TooFewRelaysLoseAgreement) {
  // k <= t relays, all silent, plus an equivocating transmitter: the two
  // halves never learn each other's value. k = t+1 restores agreement.
  const std::size_t n = 13;
  const std::size_t t = 4;
  auto run_with_relays = [&](std::size_t k, std::size_t silent_relays) {
    const BAConfig config{n, t, 0, 0};
    sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                      .value = 0, .seed = 1});
    runner.mark_faulty(0);
    for (std::size_t i = 0; i < silent_relays; ++i) {
      runner.mark_faulty(static_cast<ProcId>(1 + i));
    }
    std::set<ProcId> ones;
    for (ProcId q = 1; q < n; q += 2) ones.insert(q);
    runner.install(0, std::make_unique<adversary::EquivocatingTransmitter>(
                          ones, n));
    for (ProcId p = 1; p < n; ++p) {
      if (runner.is_faulty(p)) {
        runner.install(p, std::make_unique<adversary::SilentProcess>());
      } else {
        runner.install(p,
                       std::make_unique<DolevStrongRelay>(p, config, k));
      }
    }
    const auto result = runner.run(DolevStrongRelay::steps(config));
    return sim::check_byzantine_agreement(result, 0, 0).agreement;
  };
  EXPECT_FALSE(run_with_relays(2, 2));
  EXPECT_FALSE(run_with_relays(3, 3));
  EXPECT_TRUE(run_with_relays(t + 1, 3));
}

TEST(DolevStrong, TransmitterValuePreservedUnderMaxFaults) {
  // n = t + 2 is the extreme the paper's t < n - 1 requirement allows.
  const std::size_t t = 3;
  const std::size_t n = t + 2;
  const Protocol& protocol = *find_protocol("dolev-strong");
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(1 + i)));
  }
  expect_agreement(protocol, BAConfig{n, t, 0, 1}, 1, faults);
}

}  // namespace
}  // namespace dr::ba
