// The multi-valued family (the paper's remark that its algorithms extend
// beyond V = {0, 1} with slight modification): Algorithms 1, 2, 3 and 5
// carrying arbitrary 64-bit values.
#include <gtest/gtest.h>

#include "ba/algorithm2.h"
#include "ba/valid_message.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::expect_agreement;
using test::silent;

struct MvCase {
  std::string label;
  Protocol protocol;
  std::size_t n;
  std::size_t t;
};

std::vector<MvCase> cases() {
  std::vector<MvCase> out;
  auto add = [&](const Protocol& p, std::size_t n, std::size_t t) {
    out.push_back(MvCase{p.name, p, n, t});
  };
  add(*find_protocol("alg1-mv"), 7, 3);
  add(*find_protocol("alg2-mv"), 7, 3);
  add(make_alg3_mv_protocol(3), 24, 2);
  add(make_alg5_mv_protocol(3), 40, 2);
  return out;
}

class MultiValueFamily : public ::testing::TestWithParam<MvCase> {};

TEST_P(MultiValueFamily, ArbitraryValuesFailureFree) {
  const MvCase& c = GetParam();
  for (Value v : {Value{0}, Value{1}, Value{17},
                  Value{0xfeedfacecafeULL}}) {
    const BAConfig config{c.n, c.t, 0, v};
    ASSERT_TRUE(c.protocol.supports(config)) << c.label;
    expect_agreement(c.protocol, config, 1);
  }
}

TEST_P(MultiValueFamily, ArbitraryValuesUnderFaults) {
  const MvCase& c = GetParam();
  const BAConfig config{c.n, c.t, 0, Value{424242}};
  std::vector<ScenarioFault> faults;
  faults.push_back(silent(static_cast<ProcId>(c.n - 1)));
  if (c.t >= 2) faults.push_back(chaos(static_cast<ProcId>(c.n / 2), 5));
  expect_agreement(c.protocol, config, 1, faults);
}

TEST_P(MultiValueFamily, MultiWayEquivocationStillAgrees) {
  const MvCase& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 0};
  std::map<ProcId, Value> split;
  for (ProcId q = 1; q < c.n; ++q) split[q] = 100 + q % 3;
  std::vector<ScenarioFault> faults;
  faults.push_back(ScenarioFault{
      0, [split](ProcId, const BAConfig&) {
        return std::make_unique<adversary::ValueMapTransmitter>(split);
      }});
  const auto result = ba::run_scenario(c.protocol, config, 1, faults);
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement)
      << c.label;
}

std::string case_name(const ::testing::TestParamInfo<MvCase>& info) {
  std::string tag = info.param.label;
  for (char& ch : tag) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return tag;
}

INSTANTIATE_TEST_SUITE_P(Family, MultiValueFamily,
                         ::testing::ValuesIn(cases()), case_name);

TEST(MultiValueAlg2, ProofsCarryArbitraryValues) {
  const std::size_t t = 3;
  const std::size_t n = 2 * t + 1;
  const Value v = 0xabcdef;
  const BAConfig config{n, t, 0, v};
  sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                    .value = v, .seed = 1});
  std::vector<Algorithm2*> procs(n);
  for (ProcId p = 0; p < n; ++p) {
    auto proc = std::make_unique<Algorithm2>(p, config, /*multi_valued=*/true);
    procs[p] = proc.get();
    runner.install(p, std::move(proc));
  }
  const auto result = runner.run(Algorithm2::steps(config));
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, v).validity);
  crypto::Verifier verifier(&runner.scheme());
  for (ProcId p = 0; p < n; ++p) {
    ASSERT_TRUE(procs[p]->proof().has_value()) << p;
    EXPECT_EQ(procs[p]->proof()->value, v);
    EXPECT_TRUE(is_possession_proof(*procs[p]->proof(), verifier, p, t));
  }
}

TEST(MultiValueFamily, BinaryConfigsMatchBinaryVariants) {
  // On V = {0,1} inputs the MV variants must make identical decisions to
  // the binary originals.
  for (Value v : {Value{0}, Value{1}}) {
    const BAConfig small{9, 4, 0, v};
    EXPECT_EQ(ba::run_scenario(*find_protocol("alg1-mv"), small, 1).decisions,
              ba::run_scenario(*find_protocol("alg1"), small, 1).decisions);
    const BAConfig mid{24, 2, 0, v};
    EXPECT_EQ(ba::run_scenario(make_alg3_mv_protocol(3), mid, 1).decisions,
              ba::run_scenario(make_alg3_protocol(3), mid, 1).decisions);
  }
}

}  // namespace
}  // namespace dr::ba
