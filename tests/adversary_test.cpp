#include "adversary/strategies.h"

#include "adversary/coalition.h"

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "util/bytes.h"

namespace dr::adversary {
namespace {

using sim::Context;
using sim::Envelope;
using sim::Process;
using sim::RunConfig;
using sim::Runner;

/// Broadcasts "hello <phase>" every phase and records everything received.
class ChattyProcess final : public Process {
 public:
  void on_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) received_.push_back(env);
    for (sim::ProcId q = 0; q < ctx.n(); ++q) {
      if (q != ctx.self()) {
        Writer w;
        w.u64(ctx.phase());
        ctx.send(q, std::move(w).take(), 0);
      }
    }
  }
  std::optional<sim::Value> decision() const override { return std::nullopt; }
  const std::vector<Envelope>& received() const { return received_; }

 private:
  std::vector<Envelope> received_;
};

TEST(Coalition, MembershipLookup) {
  Coalition coalition;
  coalition.members = {2, 5, 9};
  EXPECT_TRUE(coalition.contains(5));
  EXPECT_FALSE(coalition.contains(3));
  coalition.notes["plan"] = to_bytes("equivocate");
  EXPECT_EQ(coalition.notes.at("plan"), to_bytes("equivocate"));
}

TEST(Silent, SendsNothing) {
  Runner runner(RunConfig{.n = 2, .t = 1});
  runner.mark_faulty(1);
  runner.install(0, std::make_unique<ChattyProcess>());
  runner.install(1, std::make_unique<SilentProcess>());
  const auto result = runner.run(3);
  EXPECT_EQ(result.metrics.sent_by(1), 0u);
  EXPECT_GT(result.metrics.sent_by(0), 0u);
}

TEST(Crash, StopsAtCrashPhase) {
  Runner runner(RunConfig{.n = 2, .t = 1});
  runner.mark_faulty(0);
  runner.install(0, std::make_unique<CrashProcess>(
                        std::make_unique<ChattyProcess>(), 3));
  runner.install(1, std::make_unique<ChattyProcess>());
  const auto result = runner.run(5);
  // Phases 1 and 2 only.
  EXPECT_EQ(result.metrics.sent_by(0), 2u);
  EXPECT_EQ(result.metrics.sent_by(1), 5u);
}

TEST(IgnoreFirstK, DropsExactlyKFromOutsidePeers) {
  auto inner = std::make_unique<ChattyProcess>();
  auto* inner_raw = inner.get();
  Runner runner(RunConfig{.n = 3, .t = 1});
  runner.mark_faulty(2);
  runner.install(0, std::make_unique<ChattyProcess>());
  runner.install(1, std::make_unique<ChattyProcess>());
  runner.install(2, std::make_unique<IgnoreFirstK>(std::move(inner), 3,
                                                   std::set<sim::ProcId>{}));
  runner.run(4);
  // Processor 2 receives 2 messages per phase from phases 2..4 = 6 total;
  // the first 3 must have been hidden from the inner process.
  EXPECT_EQ(inner_raw->received().size(), 3u);
}

TEST(IgnoreFirstK, PeersAreNeverIgnoredAndNeverContacted) {
  auto inner = std::make_unique<ChattyProcess>();
  auto* inner_raw = inner.get();
  Runner runner(RunConfig{.n = 3, .t = 1});
  runner.mark_faulty(2);
  runner.install(0, std::make_unique<ChattyProcess>());
  runner.install(1, std::make_unique<ChattyProcess>());
  // Peer set {0}: messages from 0 pass through; 2 never sends to 0.
  runner.install(2, std::make_unique<IgnoreFirstK>(
                        std::move(inner), 100, std::set<sim::ProcId>{0}));
  const auto result = runner.run(3);
  std::size_t from_zero = 0;
  for (const Envelope& env : inner_raw->received()) {
    if (env.from == 0) ++from_zero;
  }
  EXPECT_EQ(from_zero, 2u);  // phases 2 and 3
  EXPECT_EQ(inner_raw->received().size(), 2u);  // everything from 1 ignored
  // All of 2's sends went to 1 only.
  EXPECT_EQ(result.metrics.sent_by(2), 3u);
  EXPECT_EQ(result.metrics.received_from_correct(0), 3u);  // only from 1
}

TEST(Equivocator, SendsZeroAndOneByTarget) {
  Runner runner(RunConfig{.n = 3, .t = 1, .transmitter = 0, .value = 0,
                          .record_history = true});
  runner.mark_faulty(0);
  runner.install(0, std::make_unique<EquivocatingTransmitter>(
                        std::set<sim::ProcId>{1}, 3));
  runner.install(1, std::make_unique<ChattyProcess>());
  runner.install(2, std::make_unique<ChattyProcess>());
  const auto result = runner.run(1);
  const auto edges = result.history.phase(1).out_edges(0);
  ASSERT_EQ(edges.size(), 2u);
  const auto sv1 = ba::decode_signed_value(
      edges[0].to == 1 ? edges[0].label : edges[1].label);
  const auto sv2 = ba::decode_signed_value(
      edges[0].to == 2 ? edges[0].label : edges[1].label);
  ASSERT_TRUE(sv1.has_value());
  ASSERT_TRUE(sv2.has_value());
  EXPECT_EQ(sv1->value, 1u);
  EXPECT_EQ(sv2->value, 0u);
}

TEST(TwoFacedReplay, RoutesByReceiver) {
  TwoFacedReplay::Trace to_special;
  to_special[1].emplace_back(1, to_bytes("H"));
  to_special[1].emplace_back(2, to_bytes("H2"));  // filtered: 2 not special
  TwoFacedReplay::Trace to_rest;
  to_rest[1].emplace_back(1, to_bytes("G"));  // filtered: 1 is special
  to_rest[2].emplace_back(2, to_bytes("G2"));

  Runner runner(RunConfig{.n = 3, .t = 1, .record_history = true});
  runner.mark_faulty(0);
  runner.install(0, std::make_unique<TwoFacedReplay>(
                        to_special, std::set<sim::ProcId>{1}, to_rest));
  runner.install(1, std::make_unique<SilentProcess>());
  runner.install(2, std::make_unique<SilentProcess>());
  const auto result = runner.run(2);
  const auto p1 = result.history.phase(1).out_edges(0);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].to, 1u);
  EXPECT_EQ(p1[0].label, to_bytes("H"));
  const auto p2 = result.history.phase(2).out_edges(0);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p2[0].to, 2u);
  EXPECT_EQ(p2[0].label, to_bytes("G2"));
}

TEST(TraceOf, ExtractsPerSenderSends) {
  hist::History h;
  h.record(1, hist::Edge{0, 1, to_bytes("a")});
  h.record(1, hist::Edge{2, 1, to_bytes("other")});
  h.record(3, hist::Edge{0, 2, to_bytes("b")});
  const auto trace = trace_of(h, 0);
  ASSERT_EQ(trace.size(), 2u);
  ASSERT_EQ(trace.at(1).size(), 1u);
  EXPECT_EQ(trace.at(1)[0].first, 1u);
  EXPECT_EQ(trace.at(1)[0].second, to_bytes("a"));
  ASSERT_EQ(trace.at(3).size(), 1u);
  EXPECT_EQ(trace.at(3)[0].first, 2u);
}

TEST(RandomByzantine, IsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    Runner runner(RunConfig{.n = 3, .t = 1, .seed = 7,
                            .record_history = true});
    runner.mark_faulty(0);
    runner.install(0, std::make_unique<RandomByzantine>(seed, 0.8));
    runner.install(1, std::make_unique<ChattyProcess>());
    runner.install(2, std::make_unique<ChattyProcess>());
    return runner.run(5).history;
  };
  EXPECT_EQ(run_once(1), run_once(1));
  EXPECT_FALSE(run_once(1) == run_once(2));
}

}  // namespace
}  // namespace dr::adversary
