#include "ba/algorithm1.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "crypto/key_registry.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::equivocator;
using test::expect_agreement;
using test::silent;

TEST(SideOf, PartitionsCorrectly) {
  const std::size_t t = 3;  // n = 7: A = 1..3, B = 4..6
  EXPECT_EQ(side_of(0, t), Side::kTransmitter);
  EXPECT_EQ(side_of(1, t), Side::kA);
  EXPECT_EQ(side_of(3, t), Side::kA);
  EXPECT_EQ(side_of(4, t), Side::kB);
  EXPECT_EQ(side_of(6, t), Side::kB);
}

class OneMessageTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kT = 2;  // n = 5; A = {1,2}, B = {3,4}
  crypto::KeyRegistry registry_{5, 1};
  crypto::Verifier verifier_{&registry_};

  SignedValue chain(Value v, std::initializer_list<ProcId> signers) {
    SignedValue sv{v, {}};
    for (ProcId id : signers) {
      crypto::Signer s(&registry_, {id});
      sv = extend(sv, s, id);
    }
    return sv;
  }
};

TEST_F(OneMessageTest, DirectFromTransmitter) {
  EXPECT_TRUE(is_correct_one_message(chain(1, {0}), 1, 1, kT, verifier_));
  EXPECT_TRUE(is_correct_one_message(chain(1, {0}), 1, 4, kT, verifier_));
}

TEST_F(OneMessageTest, ValueZeroNeverQualifies) {
  EXPECT_FALSE(is_correct_one_message(chain(0, {0}), 1, 1, kT, verifier_));
}

TEST_F(OneMessageTest, LengthMustMatchPhase) {
  EXPECT_FALSE(is_correct_one_message(chain(1, {0}), 2, 1, kT, verifier_));
  EXPECT_TRUE(
      is_correct_one_message(chain(1, {0, 1}), 2, 3, kT, verifier_));
}

TEST_F(OneMessageTest, MustStartAtTransmitter) {
  EXPECT_FALSE(is_correct_one_message(chain(1, {1}), 1, 3, kT, verifier_));
}

TEST_F(OneMessageTest, SidesMustAlternate) {
  // 1 and 2 are both in A: not a path in the bipartite graph.
  EXPECT_FALSE(
      is_correct_one_message(chain(1, {0, 1, 2}), 3, 3, kT, verifier_));
  // 1 (A) then 3 (B) alternates; receiver 2 is in A: fine.
  EXPECT_TRUE(
      is_correct_one_message(chain(1, {0, 1, 3}), 3, 2, kT, verifier_));
  // ...but receiver 4 is in B, same side as last signer 3: not an edge.
  EXPECT_FALSE(
      is_correct_one_message(chain(1, {0, 1, 3}), 3, 4, kT, verifier_));
}

TEST_F(OneMessageTest, ReceiverMustBeFresh) {
  EXPECT_FALSE(
      is_correct_one_message(chain(1, {0, 1, 3}), 3, 1, kT, verifier_));
}

TEST_F(OneMessageTest, RepeatedSignerRejected) {
  EXPECT_FALSE(is_correct_one_message(chain(1, {0, 1, 3, 1}), 4, 4, kT,
                                      verifier_));
}

TEST_F(OneMessageTest, TransmitterCannotReappear) {
  EXPECT_FALSE(
      is_correct_one_message(chain(1, {0, 1, 0}), 3, 3, kT, verifier_));
}

TEST_F(OneMessageTest, BrokenSignatureRejected) {
  SignedValue sv = chain(1, {0, 1});
  sv.chain[1].sig[5] ^= 1;
  EXPECT_FALSE(is_correct_one_message(sv, 2, 3, kT, verifier_));
}

class Algorithm1Sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, Value>> {};

TEST_P(Algorithm1Sweep, FailureFree) {
  const auto& [t, value] = GetParam();
  expect_agreement(*find_protocol("alg1"), BAConfig{2 * t + 1, t, 0, value},
                   1);
}

TEST_P(Algorithm1Sweep, MessageAndPhaseBounds) {
  const auto& [t, value] = GetParam();
  const auto result = expect_agreement(*find_protocol("alg1"),
                                       BAConfig{2 * t + 1, t, 0, value}, 1);
  EXPECT_LE(result.metrics.messages_by_correct(),
            bounds::alg1_message_upper_bound(t));
  EXPECT_LE(result.metrics.last_active_phase(),
            bounds::alg1_phase_bound(t));
}

TEST_P(Algorithm1Sweep, MaxFaultsAmongRelays) {
  const auto& [t, value] = GetParam();
  const std::size_t n = 2 * t + 1;
  // All of side B faulty and silent: the transmitter is correct, so
  // validity must still hold via direct messages.
  std::vector<ScenarioFault> faults;
  for (ProcId b = static_cast<ProcId>(t + 1); b < n; ++b) {
    faults.push_back(silent(b));
  }
  expect_agreement(*find_protocol("alg1"), BAConfig{n, t, 0, value}, 1,
                   faults);
}

std::string sweep_name(
    const ::testing::TestParamInfo<Algorithm1Sweep::ParamType>& info) {
  return "t" + std::to_string(std::get<0>(info.param)) + "_v" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Algorithm1Sweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5,
                                                              8),
                                            ::testing::Values(Value{0},
                                                              Value{1})),
                         sweep_name);

TEST(Algorithm1, WorstCaseValueOneMeetsExactBound) {
  // Failure-free with value 1: the transmitter sends 2t messages and every
  // other processor relays exactly once to t targets: 2t^2 + 2t total.
  for (std::size_t t : {1u, 2u, 4u, 8u}) {
    const auto result = expect_agreement(*find_protocol("alg1"),
                                         BAConfig{2 * t + 1, t, 0, 1}, 1);
    EXPECT_EQ(result.metrics.messages_by_correct(),
              bounds::alg1_message_upper_bound(t));
  }
}

TEST(Algorithm1, ValueZeroIsNearlyFree) {
  // With value 0 nobody can ever produce a correct 1-message: only the
  // transmitter's 2t initial messages are sent.
  const std::size_t t = 4;
  const auto result = expect_agreement(*find_protocol("alg1"),
                                       BAConfig{2 * t + 1, t, 0, 0}, 1);
  EXPECT_EQ(result.metrics.messages_by_correct(), 2 * t);
}

TEST(Algorithm1, EquivocatingTransmitterAgreement) {
  for (std::size_t t : {1u, 2u, 3u}) {
    const std::size_t n = 2 * t + 1;
    for (std::uint64_t split = 0; split < 3; ++split) {
      std::set<ProcId> ones;
      for (ProcId q = 1; q < n; ++q) {
        if ((q + split) % 2 == 0) ones.insert(q);
      }
      const auto result = ba::run_scenario(*find_protocol("alg1"),
                                           BAConfig{n, t, 0, 0}, 1,
                                           {equivocator(ones)});
      EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement)
          << "t=" << t << " split=" << split;
    }
  }
}

TEST(Algorithm1, LateReleaseCoalition) {
  // A coalition {0, 1, 4} fabricates a fully-faulty signature path
  // 0 -> 1 -> 4 and releases it to the correct side-A processors only at
  // phase 3, forcing a late relay cascade. The correct processors must
  // still reach agreement among themselves (the transmitter is faulty, so
  // any common value is acceptable) within the t+2 phase budget.
  const std::size_t t = 3;
  const std::size_t n = 2 * t + 1;
  const Protocol& protocol = *find_protocol("alg1");

  struct LateReleaser final : sim::Process {
    explicit LateReleaser(std::size_t t) : t_(t) {}
    void on_phase(sim::Context& ctx) override {
      if (ctx.phase() != 3) return;
      // The coalition signer holds the keys of 0, 1 and 4, so this chain is
      // exactly a simple path of length 3 in G, sent in phase 3.
      SignedValue sv{1, {}};
      sv = extend(sv, ctx.signer(), 0);
      sv = extend(sv, ctx.signer(), 1);
      sv = extend(sv, ctx.signer(), 4);
      for (ProcId q = 2; q <= t_; ++q) {  // correct members of A
        ctx.send(q, encode(sv), sv.chain.size());
      }
    }
    std::optional<Value> decision() const override { return std::nullopt; }
    std::size_t t_;
  };

  std::vector<ScenarioFault> faults;
  faults.push_back(silent(0));
  faults.push_back(silent(1));
  faults.push_back(ScenarioFault{4, [t](ProcId, const BAConfig&) {
                                   return std::make_unique<LateReleaser>(t);
                                 }});
  const auto result =
      ba::run_scenario(protocol, BAConfig{n, t, 0, 0}, 1, faults);
  const auto check = sim::check_byzantine_agreement(result, 0, 0);
  EXPECT_TRUE(check.agreement);
  // The release happened early enough that the relay cascade completes:
  // everyone must have decided 1.
  EXPECT_EQ(check.agreed_value, Value{1});
}

class Algorithm1MVSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, Value>> {};

TEST_P(Algorithm1MVSweep, FailureFreeArbitraryValues) {
  const auto& [t, value] = GetParam();
  expect_agreement(*find_protocol("alg1-mv"),
                   BAConfig{2 * t + 1, t, 0, value}, 1);
}

TEST_P(Algorithm1MVSweep, MessageBoundIsTwiceAlg1) {
  const auto& [t, value] = GetParam();
  const auto result = expect_agreement(*find_protocol("alg1-mv"),
                                       BAConfig{2 * t + 1, t, 0, value}, 1);
  EXPECT_LE(result.metrics.messages_by_correct(),
            2 * bounds::alg1_message_upper_bound(t));
  EXPECT_LE(result.metrics.last_active_phase(),
            bounds::alg1_phase_bound(t));
}

TEST_P(Algorithm1MVSweep, SilentFaults) {
  const auto& [t, value] = GetParam();
  const std::size_t n = 2 * t + 1;
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(2 + 2 * i)));
  }
  expect_agreement(*find_protocol("alg1-mv"), BAConfig{n, t, 0, value}, 1,
                   faults);
}

std::string mv_sweep_name(
    const ::testing::TestParamInfo<Algorithm1MVSweep::ParamType>& info) {
  return "t" + std::to_string(std::get<0>(info.param)) + "_v" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Algorithm1MVSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(Value{0}, Value{1}, Value{5},
                                         Value{0xdeadbeefULL})),
    mv_sweep_name);

TEST(Algorithm1MV, ThreeWayEquivocationForcesCommonDecision) {
  // A faulty transmitter sends three different values to three groups.
  // Everyone must still agree — on one of the values or the default.
  const std::size_t t = 3;
  const std::size_t n = 2 * t + 1;
  std::map<ProcId, Value> split;
  for (ProcId q = 1; q < n; ++q) split[q] = 10 + q % 3;
  std::vector<ScenarioFault> faults;
  faults.push_back(ScenarioFault{
      0, [split](ProcId, const BAConfig&) {
        return std::make_unique<adversary::ValueMapTransmitter>(split);
      }});
  const auto result = ba::run_scenario(*find_protocol("alg1-mv"),
                                       BAConfig{n, t, 0, 0}, 1, faults);
  const auto check = sim::check_byzantine_agreement(result, 0, 0);
  EXPECT_TRUE(check.agreement);
  // Three values circulate, so every correct processor commits to at least
  // two and falls back to the default.
  EXPECT_EQ(check.agreed_value, Value{kDefaultValue});
}

TEST(Algorithm1MV, PartialEquivocationWithColluder) {
  // Transmitter sends a real value to half and nothing to the rest; a
  // colluding relay stays silent. Agreement must hold.
  const std::size_t t = 2;
  const std::size_t n = 2 * t + 1;
  std::map<ProcId, Value> split{{1, 7}, {3, 7}};
  std::vector<ScenarioFault> faults;
  faults.push_back(ScenarioFault{
      0, [split](ProcId, const BAConfig&) {
        return std::make_unique<adversary::ValueMapTransmitter>(split);
      }});
  faults.push_back(silent(4));
  const auto result = ba::run_scenario(*find_protocol("alg1-mv"),
                                       BAConfig{n, t, 0, 0}, 1, faults);
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement);
}

TEST(Algorithm1MV, MatchesBinaryAlg1OnBinaryInputs) {
  for (std::size_t t : {1u, 2u, 4u}) {
    for (Value v : {Value{0}, Value{1}}) {
      const auto mv = expect_agreement(*find_protocol("alg1-mv"),
                                       BAConfig{2 * t + 1, t, 0, v}, 1);
      const auto bin = expect_agreement(*find_protocol("alg1"),
                                        BAConfig{2 * t + 1, t, 0, v}, 1);
      EXPECT_EQ(mv.decisions, bin.decisions);
    }
  }
}

TEST(Algorithm1, SupportsOnlyExactConfiguration) {
  EXPECT_TRUE(Algorithm1::supports(BAConfig{5, 2, 0, 1}));
  EXPECT_FALSE(Algorithm1::supports(BAConfig{6, 2, 0, 1}));  // n != 2t+1
  EXPECT_FALSE(Algorithm1::supports(BAConfig{5, 2, 1, 1}));  // transmitter
  EXPECT_FALSE(Algorithm1::supports(BAConfig{5, 2, 0, 3}));  // non-binary
  EXPECT_FALSE(Algorithm1::supports(BAConfig{1, 0, 0, 1}));  // t = 0
}

}  // namespace
}  // namespace dr::ba
