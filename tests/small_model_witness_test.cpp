// Theorem 1 / Theorem 2 lower-bound witnesses at n <= 5, actually found.
//
// The deliberately thrifty protocols (sparse-observer, one-shot broadcast)
// exist because the paper's lower bounds say they MUST be breakable. Here
// the exhaustive small-model checker searches the full single-adversary
// strategy space, and — the point of this suite — the recorded
// first_violation script is REPLAYED to confirm the witness execution
// breaks agreement, rather than trusting the violation counter. The
// two-faced coalition attacks from the proofs are asserted alongside.
#include "verify/exhaustive.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "bounds/theorem1.h"
#include "bounds/theorem2.h"

namespace dr::verify {
namespace {

TEST(SparseObserver, ExhaustFindsATheorem1WitnessAndReplayConfirmsIt) {
  // n = 5, t = 1: the observer (id 4) trusts the single reporter (id 1).
  // With transmitter value 1 the reporter merely withholding its report
  // leaves the observer on the default 0 while everyone else decides 1 —
  // the starvation face of Theorem 1's |A(p)| <= t attack.
  const ba::Protocol protocol = bounds::make_sparse_observer_protocol();
  const ba::BAConfig config{5, 1, 0, 1};
  ASSERT_TRUE(protocol.supports(config));

  ExhaustiveOptions options;
  options.max_runs = 50'000;
  const ExhaustiveResult result = exhaust(protocol, config, 1, options);
  ASSERT_GT(result.violations, 0u)
      << "the broken protocol survived " << result.executions
      << " adversary strategies";
  ASSERT_FALSE(result.first_violation.empty());

  const ReplayOutcome witness =
      replay_script(protocol, config, 1, result.first_violation, options);
  EXPECT_TRUE(witness.violation)
      << "recorded first_violation script does not reproduce a violation";
  EXPECT_FALSE(witness.agreement && witness.validity);
}

TEST(SparseObserver, AttestationsAreUnforgeableUnderTheChainAdversary) {
  // The flip side at value 0: fooling the observer now requires a forged
  // reporter attestation of 1, which the unforgeability-closed strategy
  // space (fresh chains, replays, chain extensions) cannot produce. The
  // sweep is truncated, but the enumeration order varies the observer-
  // facing sends first, so the absence of violations here is the
  // signature model doing its job, not a shallow search.
  const ba::Protocol protocol = bounds::make_sparse_observer_protocol();
  const ba::BAConfig config{5, 1, 0, 0};

  ExhaustiveOptions options;
  options.max_runs = 30'000;
  const ExhaustiveResult result = exhaust(protocol, config, 1, options);
  EXPECT_EQ(result.violations, 0u);
}

TEST(OneShot, ExhaustFindsATheorem2WitnessAndReplayConfirmsIt) {
  // n = 4, t = 1, faulty transmitter: the one-shot protocol gives starved
  // receivers nothing to decide on. Two phases only, so the strategy
  // space is exhausted completely — no truncation caveat on the count.
  const ba::Protocol protocol = bounds::make_one_shot_protocol();
  const ba::BAConfig config{4, 1, 0, 1};
  ASSERT_TRUE(protocol.supports(config));

  const ExhaustiveResult result = exhaust(protocol, config, 0);
  EXPECT_FALSE(result.truncated);
  ASSERT_GT(result.violations, 0u);
  ASSERT_FALSE(result.first_violation.empty());

  const ReplayOutcome witness =
      replay_script(protocol, config, 0, result.first_violation);
  EXPECT_TRUE(witness.violation);
  EXPECT_FALSE(witness.agreement);  // faulty transmitter: agreement breaks
}

TEST(PositiveControl, CorrectAlgorithmHasNoWitnessAndReplaysClean) {
  // alg1 at n = 3, t = 1 survives the same enumeration (the model-checking
  // result the witness tests lean against), and replaying the all-zero
  // marker script is a conforming run.
  const ba::Protocol* protocol = ba::find_protocol("alg1");
  ASSERT_NE(protocol, nullptr);
  const ba::BAConfig config{3, 1, 0, 1};

  const ExhaustiveResult result = exhaust(*protocol, config, 2);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_TRUE(result.first_violation.empty());

  const ReplayOutcome clean = replay_script(*protocol, config, 2, {0});
  EXPECT_FALSE(clean.violation);
  EXPECT_TRUE(clean.agreement);
  EXPECT_TRUE(clean.validity);
}

TEST(CoalitionAttacks, TheoremProofColaitionsBreakTheThriftyProtocols) {
  // Theorem 1's replay coalition: the observer's t partners show it the
  // H-world while everyone else lives in G. |A(observer)| <= t makes the
  // swap invisible.
  const bounds::Theorem1Attack t1 = bounds::run_theorem1_attack(5, 1, 1);
  EXPECT_TRUE(t1.agreement_violated);
  ASSERT_TRUE(t1.observer_decision.has_value());
  ASSERT_TRUE(t1.others_decision.has_value());
  EXPECT_NE(*t1.observer_decision, *t1.others_decision);
  EXPECT_LE(t1.partner_set_size, 1u);

  // Theorem 2's starvation swap: the victim sees the empty subhistory.
  const bounds::Theorem2Attack t2 = bounds::run_theorem2_attack(5, 1, 1);
  EXPECT_TRUE(t2.agreement_violated);
  ASSERT_TRUE(t2.starved_decision.has_value());
  ASSERT_TRUE(t2.others_decision.has_value());
  EXPECT_NE(*t2.starved_decision, *t2.others_decision);
}

TEST(CoalitionProbe, CorrectProtocolsMeetTheorem2sPerMemberFloor) {
  // The measurable consequence for CORRECT algorithms: every member of
  // the ignore-first-k coalition B still receives at least ceil(1 + t/2)
  // messages from correct processors, and both BA conditions hold.
  for (const char* name : {"dolev-strong", "alg1", "alg2"}) {
    const ba::Protocol* protocol = ba::find_protocol(name);
    ASSERT_NE(protocol, nullptr);
    const ba::BAConfig config{5, 2, 0, 1};
    ASSERT_TRUE(protocol->supports(config));
    const bounds::Theorem2Probe probe =
        bounds::run_theorem2_probe(*protocol, config, 1);
    EXPECT_TRUE(probe.agreement) << name;
    EXPECT_TRUE(probe.validity) << name;
    EXPECT_EQ(probe.per_member_bound,
              bounds::theorem2_per_faulty_lower_bound(config.t));
    EXPECT_GE(probe.min_received_by_b, probe.per_member_bound) << name;
  }
}

}  // namespace
}  // namespace dr::verify
