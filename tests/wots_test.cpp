#include "crypto/wots.h"

#include <gtest/gtest.h>

#include <numeric>

#include "ba/registry.h"
#include "crypto/signature.h"
#include "test_util.h"
#include "util/bytes.h"

namespace dr::crypto {
namespace {

Digest digest_of(std::string_view s) { return sha256(as_bytes(s)); }

TEST(WotsDigits, DecompositionAndChecksum) {
  const Digest d = digest_of("message");
  const auto digits = wots_digits(d);
  ASSERT_EQ(digits.size(), kWotsLen);
  // The first 64 digits are exactly the digest's nibbles.
  for (std::size_t i = 0; i < kWotsLen1; ++i) {
    const std::uint32_t nibble =
        (i % 2 == 0) ? (d[i / 2] >> 4) : (d[i / 2] & 0x0f);
    EXPECT_EQ(digits[i], nibble);
    EXPECT_LT(digits[i], kWotsW);
  }
  // Checksum digits reconstruct sum(w-1-d_i).
  std::uint32_t message_sum = 0;
  for (std::size_t i = 0; i < kWotsLen1; ++i) {
    message_sum += kWotsW - 1 - digits[i];
  }
  const std::uint32_t checksum = digits[64] + digits[65] * 16 +
                                 digits[66] * 256;
  EXPECT_EQ(checksum, message_sum);
}

TEST(WotsDigits, IncreasingAMessageDigitDecreasesChecksum) {
  // The property that makes forgery-by-hashing-forward impossible.
  Digest a{};
  Digest b{};
  b[0] = 0x10;  // first nibble 1 instead of 0
  const auto da = wots_digits(a);
  const auto db = wots_digits(b);
  const std::uint32_t ca = da[64] + da[65] * 16 + da[66] * 256;
  const std::uint32_t cb = db[64] + db[65] * 16 + db[66] * 256;
  EXPECT_GT(da.size(), 0u);
  EXPECT_LT(cb, ca);
}

TEST(WotsChain, Composes) {
  const Digest start = digest_of("start");
  const Digest full = wots_chain(start, 0, 0, 15);
  const Digest half = wots_chain(start, 0, 0, 7);
  EXPECT_EQ(wots_chain(half, 0, 7, 8), full);
  // Position-dependence: another chain index gives different values.
  EXPECT_NE(wots_chain(start, 1, 0, 15), full);
}

TEST(Wots, SignVerifyRoundTrip) {
  const Bytes seed = to_bytes("wots-seed");
  const Digest d = digest_of("message");
  const WotsSignature sig = wots_sign(seed, 0, d);
  ASSERT_EQ(sig.chains.size(), kWotsLen);
  const auto leaf = wots_verify(sig, d);
  ASSERT_TRUE(leaf.has_value());
  EXPECT_EQ(*leaf, wots_leaf_hash(seed, 0));
}

TEST(Wots, WrongDigestProducesWrongLeaf) {
  const Bytes seed = to_bytes("wots-seed");
  const WotsSignature sig = wots_sign(seed, 0, digest_of("message"));
  const auto leaf = wots_verify(sig, digest_of("other"));
  // W-OTS verification "succeeds" structurally but lands on a different
  // leaf hash, which the Merkle-path check then rejects.
  ASSERT_TRUE(leaf.has_value());
  EXPECT_NE(*leaf, wots_leaf_hash(seed, 0));
}

TEST(Wots, TamperedChainProducesWrongLeaf) {
  const Bytes seed = to_bytes("wots-seed");
  const Digest d = digest_of("message");
  WotsSignature sig = wots_sign(seed, 0, d);
  sig.chains[12][0] ^= 1;
  const auto leaf = wots_verify(sig, d);
  ASSERT_TRUE(leaf.has_value());
  EXPECT_NE(*leaf, wots_leaf_hash(seed, 0));
}

TEST(Wots, WrongChainCountRejected) {
  const Bytes seed = to_bytes("wots-seed");
  WotsSignature sig = wots_sign(seed, 0, digest_of("m"));
  sig.chains.pop_back();
  EXPECT_EQ(wots_verify(sig, digest_of("m")), std::nullopt);
}

TEST(WotsPrivateKey, AuthPathsAndExhaustion) {
  WotsPrivateKey key(to_bytes("seed"), 2);
  const Digest d = digest_of("msg");
  for (int i = 0; i < 4; ++i) {
    const auto sig = key.sign(d);
    const auto leaf = wots_verify(sig.wots, d);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(merkle_root_from_path(*leaf, sig.leaf, sig.auth_path),
              key.root());
  }
  EXPECT_EQ(key.remaining(), 0u);
}

TEST(WotsSignatureCodec, RoundTripAndSize) {
  WotsPrivateKey key(to_bytes("seed"), 3);
  const auto sig = key.sign(digest_of("m"));
  const Bytes enc = encode_wots_signature(sig);
  // ~67 chains + 3 path nodes, 32 bytes each, plus framing: well under 3 KiB
  // (vs ~25 KiB for the Lamport scheme).
  EXPECT_LT(enc.size(), 3 * 1024u);
  const auto dec = decode_wots_signature(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->leaf, sig.leaf);
  EXPECT_EQ(dec->wots.chains, sig.wots.chains);
  EXPECT_EQ(dec->auth_path, sig.auth_path);
  EXPECT_EQ(decode_wots_signature(to_bytes("garbage")), std::nullopt);
}

class WotsSchemeTest : public ::testing::Test {
 protected:
  WotsScheme scheme_{3, 7, /*height=*/3};
};

TEST_F(WotsSchemeTest, SignVerify) {
  const Bytes msg = to_bytes("attack at dawn");
  const Bytes sig = scheme_.sign(1, msg);
  EXPECT_TRUE(scheme_.verify(1, msg, sig));
  EXPECT_FALSE(scheme_.verify(2, msg, sig));
  EXPECT_FALSE(scheme_.verify(1, to_bytes("other"), sig));
}

TEST_F(WotsSchemeTest, StateAdvances) {
  EXPECT_EQ(scheme_.remaining(0), 8u);
  scheme_.sign(0, to_bytes("a"));
  EXPECT_EQ(scheme_.remaining(0), 7u);
}

TEST_F(WotsSchemeTest, WorksThroughSignerVerifier) {
  Signer signer(&scheme_, {2});
  Verifier verifier(&scheme_);
  const Bytes msg = to_bytes("wrapped");
  const Signature sig = signer.sign(2, msg);
  EXPECT_TRUE(verifier.verify(2, msg, sig));
}

TEST(WotsIntegration, DolevStrongOverWots) {
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
  const ba::BAConfig config{5, 1, 0, 1};
  ba::ScenarioOptions options;
  options.scheme = sim::SchemeKind::kWots;
  options.merkle_height = 4;
  const auto result = ba::run_scenario(protocol, config, options,
                                       {test::silent(4)});
  const auto check = sim::check_byzantine_agreement(result, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

TEST(WotsIntegration, Algorithm2OverWots) {
  const ba::Protocol& protocol = *ba::find_protocol("alg2");
  const ba::BAConfig config{5, 2, 0, 1};
  ba::ScenarioOptions options;
  options.scheme = sim::SchemeKind::kWots;
  options.merkle_height = 5;  // Algorithm 2 signs several chains
  const auto result = ba::run_scenario(protocol, config, options);
  const auto check = sim::check_byzantine_agreement(result, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

}  // namespace
}  // namespace dr::crypto
