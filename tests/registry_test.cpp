// The protocol registry: names, parameter constraints and step formulas.
#include "ba/registry.h"

#include <gtest/gtest.h>

#include "ba/algorithm1.h"
#include "ba/dolev_strong.h"
#include "test_util.h"

namespace dr::ba {
namespace {

TEST(Registry, AllFixedProtocolsPresent) {
  for (const char* name : {"dolev-strong", "dolev-strong-relay", "eig",
                           "phase-king", "alg1", "alg1-mv", "alg2",
                           "alg2-mv"}) {
    EXPECT_NE(find_protocol(name), nullptr) << name;
  }
  EXPECT_EQ(find_protocol("nonexistent"), nullptr);
  EXPECT_EQ(find_protocol(""), nullptr);
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const Protocol& p : protocols()) {
    EXPECT_TRUE(names.insert(p.name).second) << p.name;
  }
}

TEST(Registry, AuthenticationFlags) {
  EXPECT_TRUE(find_protocol("dolev-strong")->authenticated);
  EXPECT_TRUE(find_protocol("alg1")->authenticated);
  EXPECT_FALSE(find_protocol("eig")->authenticated);
  EXPECT_FALSE(find_protocol("phase-king")->authenticated);
}

TEST(Registry, ParameterisedFamiliesEmbedTheirParameter) {
  EXPECT_EQ(make_alg3_protocol(7).name, "alg3[s=7]");
  EXPECT_EQ(make_alg5_protocol(3).name, "alg5[s=3]");
  EXPECT_EQ(make_alg3_mv_protocol(2).name, "alg3-mv[s=2]");
  EXPECT_EQ(make_alg5_mv_protocol(15).name, "alg5-mv[s=15]");
  EXPECT_EQ(make_alg5_ungated_protocol(1).name, "alg5-ungated[s=1]");
}

TEST(Registry, StepFormulasMatchTheClasses) {
  const BAConfig config{9, 4, 0, 1};
  EXPECT_EQ(find_protocol("dolev-strong")->steps(config),
            DolevStrongBroadcast::steps(config));
  EXPECT_EQ(find_protocol("alg1")->steps(config),
            Algorithm1::steps(config));
}

TEST(Registry, MakeProducesWorkingProcesses) {
  // Every fixed protocol instantiates and reaches agreement at a config it
  // supports.
  struct Probe {
    const char* name;
    std::size_t n;
    std::size_t t;
  };
  for (const Probe& probe :
       {Probe{"dolev-strong", 5, 1}, Probe{"dolev-strong-relay", 6, 1},
        Probe{"eig", 4, 1}, Probe{"phase-king", 5, 1}, Probe{"alg1", 3, 1},
        Probe{"alg1-mv", 3, 1}, Probe{"alg2", 3, 1},
        Probe{"alg2-mv", 3, 1}}) {
    const Protocol& protocol = *find_protocol(probe.name);
    const BAConfig config{probe.n, probe.t, 0, 1};
    ASSERT_TRUE(protocol.supports(config)) << probe.name;
    test::expect_agreement(protocol, config, 1);
  }
}

TEST(RegistryDeathTest, RunScenarioRejectsUnsupportedConfig) {
  const Protocol& alg1 = *find_protocol("alg1");
  EXPECT_DEATH(
      { ba::run_scenario(alg1, BAConfig{6, 2, 0, 1}, 1); },  // n != 2t+1
      "Precondition");
}

TEST(RegistryDeathTest, RunScenarioRejectsTooManyFaults) {
  const Protocol& ds = *find_protocol("dolev-strong");
  std::vector<ScenarioFault> faults{test::silent(1), test::silent(2)};
  EXPECT_DEATH(
      { ba::run_scenario(ds, BAConfig{5, 1, 0, 1}, 1, faults); },
      "Precondition");
}

}  // namespace
}  // namespace dr::ba
