#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include "ba/registry.h"
#include "crypto/signature.h"
#include "test_util.h"
#include "util/bytes.h"

namespace dr::crypto {
namespace {

Digest digest_of(std::string_view s) { return sha256(as_bytes(s)); }

TEST(LamportOts, SignVerifyRoundTrip) {
  const Bytes seed = to_bytes("ots-seed");
  const Digest d = digest_of("message");
  const OtsSignature sig = ots_sign(seed, 0, d);
  const auto leaf = ots_verify(sig, d);
  ASSERT_TRUE(leaf.has_value());
  EXPECT_EQ(*leaf, ots_public_key(seed, 0).leaf_hash());
}

TEST(LamportOts, WrongDigestFails) {
  const Bytes seed = to_bytes("ots-seed");
  const OtsSignature sig = ots_sign(seed, 0, digest_of("message"));
  // A different digest flips at least one bit, whose preimage was never
  // revealed.
  EXPECT_EQ(ots_verify(sig, digest_of("other")), std::nullopt);
}

TEST(LamportOts, TamperedRevealFails) {
  const Bytes seed = to_bytes("ots-seed");
  const Digest d = digest_of("message");
  OtsSignature sig = ots_sign(seed, 0, d);
  sig.revealed[17][3] ^= 1;
  EXPECT_EQ(ots_verify(sig, d), std::nullopt);
}

TEST(LamportOts, SwappedPublicKeyChangesLeafHash) {
  const Bytes seed = to_bytes("ots-seed");
  const Digest d = digest_of("message");
  OtsSignature sig = ots_sign(seed, 0, d);
  // Substituting a different public key either breaks verification or
  // changes the leaf hash (so the Merkle root check fails upstream).
  const OtsPublicKey original = sig.public_key;
  sig.public_key = ots_public_key(seed, 1);
  const auto leaf = ots_verify(sig, d);
  if (leaf.has_value()) {
    EXPECT_NE(*leaf, original.leaf_hash());
  }
}

TEST(LamportOts, DifferentLeavesHaveIndependentKeys) {
  const Bytes seed = to_bytes("ots-seed");
  EXPECT_NE(ots_public_key(seed, 0).leaf_hash(),
            ots_public_key(seed, 1).leaf_hash());
}

TEST(MerklePrivateKey, RootIsDeterministic) {
  MerklePrivateKey a(to_bytes("seed"), 3);
  MerklePrivateKey b(to_bytes("seed"), 3);
  EXPECT_EQ(a.root(), b.root());
  MerklePrivateKey c(to_bytes("other"), 3);
  EXPECT_NE(a.root(), c.root());
}

TEST(MerklePrivateKey, AuthPathReconstructsRoot) {
  MerklePrivateKey key(to_bytes("seed"), 3);
  const Digest d = digest_of("msg");
  for (int i = 0; i < 8; ++i) {  // exhaust all leaves
    const auto sig = key.sign(d);
    const auto leaf_hash = ots_verify(sig.ots, d);
    ASSERT_TRUE(leaf_hash.has_value());
    EXPECT_EQ(merkle_root_from_path(*leaf_hash, sig.leaf, sig.auth_path),
              key.root());
    EXPECT_EQ(sig.leaf, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(key.remaining(), 0u);
}

TEST(MerklePrivateKey, WrongLeafIndexBreaksPath) {
  MerklePrivateKey key(to_bytes("seed"), 3);
  const Digest d = digest_of("msg");
  auto sig = key.sign(d);
  const auto leaf_hash = ots_verify(sig.ots, d);
  ASSERT_TRUE(leaf_hash.has_value());
  EXPECT_NE(merkle_root_from_path(*leaf_hash, sig.leaf + 1, sig.auth_path),
            key.root());
}

TEST(MerkleSignature, EncodeDecodeRoundTrip) {
  MerklePrivateKey key(to_bytes("seed"), 2);
  const auto sig = key.sign(digest_of("msg"));
  const auto decoded = decode_merkle_signature(encode_merkle_signature(sig));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->leaf, sig.leaf);
  EXPECT_EQ(decoded->ots.revealed, sig.ots.revealed);
  EXPECT_EQ(decoded->auth_path, sig.auth_path);
}

TEST(MerkleSignature, DecodeRejectsGarbage) {
  EXPECT_EQ(decode_merkle_signature(Bytes{}), std::nullopt);
  EXPECT_EQ(decode_merkle_signature(to_bytes("junk")), std::nullopt);
  MerklePrivateKey key(to_bytes("seed"), 2);
  Bytes enc = encode_merkle_signature(key.sign(digest_of("m")));
  enc.pop_back();
  EXPECT_EQ(decode_merkle_signature(enc), std::nullopt);
}

class MerkleSchemeTest : public ::testing::Test {
 protected:
  MerkleScheme scheme_{3, /*master_seed=*/7, /*height=*/3};
};

TEST_F(MerkleSchemeTest, SignVerify) {
  const Bytes msg = to_bytes("attack at dawn");
  const Bytes sig = scheme_.sign(1, msg);
  EXPECT_TRUE(scheme_.verify(1, msg, sig));
}

TEST_F(MerkleSchemeTest, CrossSignerFails) {
  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme_.sign(1, msg);
  EXPECT_FALSE(scheme_.verify(2, msg, sig));
  EXPECT_FALSE(scheme_.verify(0, msg, sig));
}

TEST_F(MerkleSchemeTest, WrongMessageFails) {
  const Bytes sig = scheme_.sign(1, to_bytes("m"));
  EXPECT_FALSE(scheme_.verify(1, to_bytes("m2"), sig));
}

TEST_F(MerkleSchemeTest, StateAdvancesPerSignature) {
  EXPECT_EQ(scheme_.remaining(1), 8u);
  scheme_.sign(1, to_bytes("a"));
  scheme_.sign(1, to_bytes("b"));
  EXPECT_EQ(scheme_.remaining(1), 6u);
  EXPECT_EQ(scheme_.remaining(0), 8u);
}

TEST_F(MerkleSchemeTest, SignaturesFromDifferentLeavesBothVerify) {
  const Bytes m1 = to_bytes("first");
  const Bytes m2 = to_bytes("second");
  const Bytes s1 = scheme_.sign(0, m1);
  const Bytes s2 = scheme_.sign(0, m2);
  EXPECT_TRUE(scheme_.verify(0, m1, s1));
  EXPECT_TRUE(scheme_.verify(0, m2, s2));
  EXPECT_NE(s1, s2);
}

TEST_F(MerkleSchemeTest, WorksThroughSignerVerifierWrappers) {
  Signer signer(&scheme_, {2});
  Verifier verifier(&scheme_);
  const Bytes msg = to_bytes("wrapped");
  const Signature sig = signer.sign(2, msg);
  EXPECT_TRUE(verifier.verify(2, msg, sig));
  Signature relabelled = sig;
  relabelled.signer = 1;
  EXPECT_FALSE(verifier.verify(1, msg, relabelled));
}

// End-to-end: Byzantine Agreement over genuine hash-based signatures. The
// key budget matters: Dolev-Strong signs at most 1 + 2 chains per
// processor, well within 2^6 leaves.
TEST(MerkleIntegration, DolevStrongOverHashBasedSignatures) {
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
  const ba::BAConfig config{5, 1, 0, 1};
  sim::RunConfig run{.n = 5, .t = 1, .transmitter = 0, .value = 1,
                     .seed = 1, .scheme = sim::SchemeKind::kMerkle,
                     .merkle_height = 4};
  sim::Runner runner(run);
  runner.mark_faulty(4);
  for (ba::ProcId p = 0; p < 4; ++p) {
    runner.install(p, protocol.make(p, config));
  }
  runner.install(4, std::make_unique<adversary::SilentProcess>());
  const auto result = runner.run(protocol.steps(config));
  const auto check = sim::check_byzantine_agreement(result, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

TEST(MerkleIntegration, Algorithm1OverHashBasedSignatures) {
  const ba::Protocol& protocol = *ba::find_protocol("alg1");
  const ba::BAConfig config{5, 2, 0, 1};
  sim::RunConfig run{.n = 5, .t = 2, .transmitter = 0, .value = 1,
                     .seed = 2, .scheme = sim::SchemeKind::kMerkle,
                     .merkle_height = 3};
  sim::Runner runner(run);
  for (ba::ProcId p = 0; p < 5; ++p) {
    runner.install(p, protocol.make(p, config));
  }
  const auto result = runner.run(protocol.steps(config));
  const auto check = sim::check_byzantine_agreement(result, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

}  // namespace
}  // namespace dr::crypto
