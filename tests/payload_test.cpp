// Zero-copy delivery plane: allocation and refcount accounting.
//
// The claims under test: a size-n broadcast costs O(1) payload buffer
// allocations in the simulator and on the in-process transport (send side),
// fan-out and history recording are handle copies, and FaultPlan::apply
// copies bytes exactly once — and only when a corrupt rule actually fires.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ba/registry.h"
#include "net/harness.h"
#include "sim/faults.h"
#include "sim/payload.h"
#include "sim/process.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::ProcId;
using sim::Payload;

/// Receiver-side record of what arrived, outliving the runner so the test
/// can inspect buffer identity after the run. Only written under
/// threads == 1 (the parallel variants pass a null sink).
struct Sink {
  std::vector<Payload> received;
};

/// Processor 0 broadcasts `payload_size` bytes in phase 1; everyone else
/// stashes a handle per delivery.
class Broadcaster final : public sim::Process {
 public:
  Broadcaster(ProcId self, std::size_t payload_size, Sink* sink)
      : self_(self), payload_size_(payload_size), sink_(sink) {}

  void on_phase(sim::Context& ctx) override {
    if (self_ == 0) {
      if (ctx.phase() == 1) ctx.send_all(Bytes(payload_size_, 0xAB), 0);
      return;
    }
    if (sink_ == nullptr) return;
    for (const sim::Envelope& env : ctx.inbox()) {
      sink_->received.push_back(env.payload);
    }
  }

  std::optional<ba::Value> decision() const override { return 0; }

 private:
  ProcId self_;
  std::size_t payload_size_;
  Sink* sink_;
};

ba::Protocol broadcast_protocol(std::size_t payload_size, Sink* sink) {
  ba::Protocol p;
  p.name = "bcast-probe";
  p.authenticated = false;
  p.supports = [](const BAConfig&) { return true; };
  p.steps = [](const BAConfig&) { return sim::PhaseNum{2}; };
  p.make = [payload_size, sink](ProcId id, const BAConfig&) {
    return std::make_unique<Broadcaster>(id, payload_size, sink);
  };
  return p;
}

TEST(Payload, HandleSemantics) {
  Payload::reset_allocation_count();
  const Payload empty;
  const Payload also_empty{Bytes{}};
  EXPECT_EQ(Payload::allocations(), 0u);  // empty payloads never allocate
  EXPECT_TRUE(empty == also_empty);

  // Above the inline capacity a payload is one shared ref-counted buffer.
  const Bytes big(Payload::kInlineCapacity + 8, 0x42);
  const Payload a{big};
  const Payload b = a;  // handle copy, no new buffer
  EXPECT_EQ(Payload::allocations(), 1u);
  EXPECT_TRUE(b.shares_buffer_with(a));

  const Payload c{big};  // same content, distinct buffer
  EXPECT_EQ(Payload::allocations(), 2u);
  EXPECT_FALSE(c.shares_buffer_with(a));
  EXPECT_TRUE(c == a);  // equality is by content, not handle

  Bytes copy = a.to_bytes();
  copy[0] = 9;
  EXPECT_EQ(a.view()[0], 0x42);  // to_bytes is a deep copy
  EXPECT_TRUE(a < Payload{Bytes{0x43}});
}

TEST(Payload, InlineSmallBufferSemantics) {
  Payload::reset_allocation_count();
  const Payload small{Bytes{1, 2, 3}};
  EXPECT_EQ(Payload::allocations(), 0u);  // fits inline: no buffer at all
  const Payload copy = small;             // copies the bytes, not a handle
  EXPECT_FALSE(copy.shares_buffer_with(small));  // no buffer to share
  EXPECT_TRUE(copy == small);  // content equality is storage-blind
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy.view()[2], 3);

  // The boundary is exact: kInlineCapacity bytes stay in the handle, one
  // byte more becomes the first shared buffer.
  const Payload at_cap{Bytes(Payload::kInlineCapacity, 7)};
  EXPECT_EQ(Payload::allocations(), 0u);
  const Payload over_cap{Bytes(Payload::kInlineCapacity + 1, 7)};
  EXPECT_EQ(Payload::allocations(), 1u);
  EXPECT_TRUE(at_cap < over_cap);  // ordering crosses storage classes too
}

TEST(PayloadAllocations, SimBroadcastAllocatesOneBuffer) {
  const std::size_t n = 64;
  Sink sink;
  const ba::Protocol protocol = broadcast_protocol(256, &sink);
  ba::ScenarioOptions options;
  options.record_history = true;  // history edges must be handle copies too
  Payload::reset_allocation_count();
  const auto result =
      ba::run_scenario(protocol, BAConfig{n, 1, 0, 1}, options);
  EXPECT_EQ(result.metrics.messages_total(), n - 1);
  EXPECT_EQ(Payload::allocations(), 1u);
  ASSERT_EQ(sink.received.size(), n - 1);
  for (const Payload& p : sink.received) {
    EXPECT_TRUE(p.shares_buffer_with(sink.received.front()));
  }
}

TEST(PayloadAllocations, ParallelSimBroadcastAllocatesOneBuffer) {
  const std::size_t n = 64;
  const ba::Protocol protocol = broadcast_protocol(256, nullptr);
  ba::ScenarioOptions options;
  options.record_history = true;
  options.threads = 4;
  Payload::reset_allocation_count();
  const auto result =
      ba::run_scenario(protocol, BAConfig{n, 1, 0, 1}, options);
  EXPECT_EQ(result.metrics.messages_total(), n - 1);
  EXPECT_EQ(Payload::allocations(), 1u);
}

TEST(PayloadAllocations, InProcessNetBroadcastSendSideIsO1) {
  const std::size_t n = 8;
  const ba::Protocol protocol = broadcast_protocol(128, nullptr);
  Payload::reset_allocation_count();
  const auto result = net::run_scenario(protocol, BAConfig{n, 1, 0, 1},
                                        net::Backend::kInProcess);
  EXPECT_EQ(result.run.metrics.messages_total(), n - 1);
  // Send side: one buffer for the whole fan-out — frames serialize the
  // shared handle into wire bytes without rewrapping it. Receive side: one
  // decoded buffer per delivered payload frame; the synchronizer's kDone
  // frames carry no payload and allocate nothing.
  EXPECT_EQ(Payload::allocations(), 1u + (n - 1));
}

TEST(PayloadAllocations, FaultPlanCopiesOnWriteExactlyOnce) {
  sim::FaultPlan plan({{sim::FaultKind::kCorrupt, 0, 3, 1}}, 9);
  // Above inline capacity so buffer identity (not byte copies) is what the
  // shares_buffer_with assertions below observe.
  const Payload original{Bytes(Payload::kInlineCapacity + 8, 0x5a)};
  Payload::reset_allocation_count();

  const auto corrupted = plan.apply(0, 3, 1, original);
  ASSERT_EQ(corrupted.size(), 1u);
  EXPECT_FALSE(corrupted[0].shares_buffer_with(original));
  EXPECT_FALSE(corrupted[0] == original);
  EXPECT_EQ(Payload::allocations(), 1u);  // exactly the one copy-on-write

  const auto untouched = plan.apply(0, 4, 1, original);
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_TRUE(untouched[0].shares_buffer_with(original));
  EXPECT_EQ(Payload::allocations(), 1u);  // pass-through rewraps nothing
}

TEST(PayloadAllocations, DuplicateRuleIsAHandleCopy) {
  sim::FaultPlan plan(
      {{sim::FaultKind::kDuplicate, 0, sim::kAnyProc, sim::kAnyPhase}}, 9);
  const Payload original{Bytes(Payload::kInlineCapacity + 8, 9)};
  Payload::reset_allocation_count();
  const auto out = plan.apply(0, 1, 1, original);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].shares_buffer_with(original));
  EXPECT_TRUE(out[1].shares_buffer_with(original));
  EXPECT_EQ(Payload::allocations(), 0u);
}

TEST(PayloadAllocations, BroadcastWithOneCorruptRuleAllocatesTwice) {
  const std::size_t n = 16;
  const ba::Protocol protocol = broadcast_protocol(64, nullptr);
  const std::vector<sim::FaultRule> rules{{sim::FaultKind::kCorrupt, 0, 3, 1}};
  sim::FaultPlan plan(rules, 5);
  ba::ScenarioOptions options;
  options.fault_plan = &plan;
  Payload::reset_allocation_count();
  const auto result =
      ba::run_scenario(protocol, BAConfig{n, 1, 0, 1}, options);
  // One buffer for the broadcast plus exactly one CoW on the corrupted
  // link; the other n-2 deliveries stay handle copies.
  EXPECT_EQ(Payload::allocations(), 2u);
  EXPECT_EQ(result.metrics.messages_total(), n - 1);
  EXPECT_EQ(plan.perturbed(), std::set<ProcId>{0});
}

}  // namespace
}  // namespace dr
