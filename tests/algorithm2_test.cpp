#include "ba/algorithm2.h"

#include <gtest/gtest.h>

#include "ba/valid_message.h"
#include "bounds/formulas.h"
#include "crypto/key_registry.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::crash;
using test::delayed_echo;
using test::equivocator;
using test::expect_agreement;
using test::silent;

TEST(IsIncreasingMessage, Basics) {
  crypto::KeyRegistry registry(6, 1);
  crypto::Verifier verifier(&registry);
  auto chain = [&](Value v, std::initializer_list<ProcId> signers) {
    SignedValue sv{v, {}};
    for (ProcId id : signers) {
      crypto::Signer s(&registry, {id});
      sv = extend(sv, s, id);
    }
    return sv;
  };

  // Bare value: trivially increasing.
  EXPECT_TRUE(is_increasing_message(SignedValue{1, {}}, 3, 1, verifier));
  // Value mismatch.
  EXPECT_FALSE(is_increasing_message(SignedValue{0, {}}, 3, 1, verifier));
  // Ascending signers below self.
  EXPECT_TRUE(is_increasing_message(chain(1, {0, 1, 2}), 3, 1, verifier));
  // Signer == self not allowed.
  EXPECT_FALSE(is_increasing_message(chain(1, {0, 3}), 3, 1, verifier));
  // Signer above self not allowed.
  EXPECT_FALSE(is_increasing_message(chain(1, {0, 4}), 3, 1, verifier));
  // Non-ascending order.
  EXPECT_FALSE(is_increasing_message(chain(1, {2, 0}), 3, 1, verifier));
  // Duplicates.
  EXPECT_FALSE(is_increasing_message(chain(1, {0, 0}), 3, 1, verifier));
  // Broken signature.
  SignedValue bad = chain(1, {0, 1});
  bad.chain[0].sig[0] ^= 1;
  EXPECT_FALSE(is_increasing_message(bad, 3, 1, verifier));
}

/// Runs alg2 and returns the run plus direct access to each correct
/// processor's proof (via a fresh scenario using the registry protocol).
class Algorithm2Proofs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Algorithm2Proofs, EveryCorrectProcessorHoldsAProofFailureFree) {
  const std::size_t t = GetParam();
  const std::size_t n = 2 * t + 1;
  for (Value v : {Value{0}, Value{1}}) {
    // Run manually so we can inspect the Algorithm2 objects afterwards.
    const BAConfig config{n, t, 0, v};
    sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                      .value = v, .seed = 1});
    std::vector<Algorithm2*> procs(n);
    for (ProcId p = 0; p < n; ++p) {
      auto proc = std::make_unique<Algorithm2>(p, config);
      procs[p] = proc.get();
      runner.install(p, std::move(proc));
    }
    const auto result = runner.run(Algorithm2::steps(config));
    const auto check = sim::check_byzantine_agreement(result, 0, v);
    EXPECT_TRUE(check.agreement);
    EXPECT_TRUE(check.validity);

    crypto::Verifier verifier(&runner.scheme());
    for (ProcId p = 0; p < n; ++p) {
      ASSERT_TRUE(procs[p]->proof().has_value())
          << "processor " << p << " lacks a proof (t=" << t << ")";
      const SignedValue& proof = *procs[p]->proof();
      EXPECT_EQ(proof.value, v);
      EXPECT_TRUE(is_possession_proof(proof, verifier, p, t));
    }
  }
}

TEST_P(Algorithm2Proofs, ProofsSurviveMaxSilentFaults) {
  const std::size_t t = GetParam();
  const std::size_t n = 2 * t + 1;
  const Value v = 1;
  const BAConfig config{n, t, 0, v};
  sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                    .value = v, .seed = 3});
  // Faulty: every second non-transmitter processor, up to t of them.
  std::vector<ProcId> faulty_ids;
  for (ProcId p = 2; p < n && faulty_ids.size() < t; p += 2) {
    faulty_ids.push_back(p);
    runner.mark_faulty(p);
  }
  std::vector<Algorithm2*> procs(n, nullptr);
  for (ProcId p = 0; p < n; ++p) {
    if (runner.is_faulty(p)) {
      runner.install(p, std::make_unique<adversary::SilentProcess>());
    } else {
      auto proc = std::make_unique<Algorithm2>(p, config);
      procs[p] = proc.get();
      runner.install(p, std::move(proc));
    }
  }
  const auto result = runner.run(Algorithm2::steps(config));
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, v).agreement);

  crypto::Verifier verifier(&runner.scheme());
  for (ProcId p = 0; p < n; ++p) {
    if (procs[p] == nullptr) continue;
    ASSERT_TRUE(procs[p]->proof().has_value()) << "processor " << p;
    EXPECT_TRUE(is_possession_proof(*procs[p]->proof(), verifier, p, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Algorithm2Proofs,
                         ::testing::Values(1, 2, 3, 4, 6),
                         [](const auto& param_info) {
                           return "t" + std::to_string(param_info.param);
                         });

TEST(Algorithm2, MessageAndPhaseBounds) {
  for (std::size_t t : {1u, 2u, 3u, 5u}) {
    const auto result = expect_agreement(*find_protocol("alg2"),
                                         BAConfig{2 * t + 1, t, 0, 1}, 1);
    EXPECT_LE(result.metrics.messages_by_correct(),
              bounds::alg2_message_upper_bound(t))
        << "t=" << t;
    EXPECT_LE(result.metrics.last_active_phase(),
              bounds::alg2_phase_bound(t))
        << "t=" << t;
  }
}

TEST(Algorithm2, MidProtocolCrashesTolerated) {
  // Crash faults at staggered phases, including one in the cascade's
  // middle: the remaining t+1 correct processors must still converge on
  // the transmitter's value.
  const Protocol& protocol = *find_protocol("alg2");
  const std::size_t t = 3;
  const BAConfig config{2 * t + 1, t, 0, 1};
  expect_agreement(protocol, config, 1,
                   {crash(protocol, 2, 2), crash(protocol, 4, 4),
                    crash(protocol, 6, 6)});
}

TEST(Algorithm2, CrashingTransmitterKeepsAgreement) {
  // Validity is vacuous once the transmitter is faulty, but the other
  // processors must still agree — on 1 if the value escaped before the
  // crash, on the default otherwise.
  const Protocol& protocol = *find_protocol("alg2");
  const std::size_t t = 2;
  const BAConfig config{2 * t + 1, t, 0, 1};
  for (PhaseNum phase = 1; phase <= 4; ++phase) {
    const auto result =
        ba::run_scenario(protocol, config, 1, {crash(protocol, 0, phase)});
    EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 1).agreement)
        << "crash phase " << phase;
  }
}

TEST(Algorithm2, DelayedEchoFaultsTolerated) {
  // Replayed chains arrive with too few signatures for their phase, so
  // the increasing-message rule must reject them.
  const Protocol& protocol = *find_protocol("alg2");
  const std::size_t t = 2;
  for (Value value : {Value{0}, Value{1}}) {
    expect_agreement(protocol, BAConfig{2 * t + 1, t, 0, value}, 1,
                     {delayed_echo(2, 1), delayed_echo(4, 2)});
  }
}

TEST(Algorithm2, NoProofOfWrongValueExists) {
  // Theorem 4: "No processor can have such a message with a value different
  // from the common value." We verify constructively: with a correct
  // transmitter sending 1, the coalition (t processors) cannot assemble
  // t+1 distinct signatures on 0, because correct processors only ever sign
  // their committed value. We check that no correct processor's history
  // ever contains a 0-valued chain with more than t distinct signers.
  const std::size_t t = 2;
  const std::size_t n = 2 * t + 1;
  const Value v = 1;
  const auto result = ba::run_scenario(
      *find_protocol("alg2"), BAConfig{n, t, 0, v}, 1,
      {chaos(3, 11, 0.6), chaos(4, 12, 0.6)}, /*record_history=*/true);
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, v).agreement);
  for (hist::PhaseNum k = 1; k <= result.history.phases(); ++k) {
    for (const hist::Edge& e : result.history.phase(k).edges()) {
      const auto sv = decode_signed_value(e.label);
      if (!sv || sv->value == v) continue;
      std::set<ProcId> signers(chain_signers(*sv).begin(),
                               chain_signers(*sv).end());
      EXPECT_LE(signers.size(), t)
          << "a wrong-value message with more than t signatures circulated";
    }
  }
}

TEST(Algorithm2, EquivocatingTransmitterStillProducesConsistentProofs) {
  const std::size_t t = 2;
  const std::size_t n = 2 * t + 1;
  const BAConfig config{n, t, 0, 0};
  sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                    .value = 0, .seed = 5});
  runner.mark_faulty(0);
  runner.install(0, std::make_unique<adversary::EquivocatingTransmitter>(
                        std::set<ProcId>{1, 3}, n));
  std::vector<Algorithm2*> procs(n, nullptr);
  for (ProcId p = 1; p < n; ++p) {
    auto proc = std::make_unique<Algorithm2>(p, config);
    procs[p] = proc.get();
    runner.install(p, std::move(proc));
  }
  const auto result = runner.run(Algorithm2::steps(config));
  const auto check = sim::check_byzantine_agreement(result, 0, 0);
  EXPECT_TRUE(check.agreement);
  // All correct proofs must carry the common value.
  for (ProcId p = 1; p < n; ++p) {
    ASSERT_TRUE(procs[p]->proof().has_value()) << p;
    EXPECT_EQ(procs[p]->proof()->value, *check.agreed_value);
  }
}

}  // namespace
}  // namespace dr::ba
