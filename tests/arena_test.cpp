// The arena-backed message plane: bump-allocator mechanics, payload-arena
// lifetime discipline, and the headline claim — a warmed-up run's steady
// phases (2..end) perform zero heap allocations, with results bit-identical
// to the heap-backed path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ba/registry.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/runner.h"
#include "util/alloc_stats.h"
#include "util/arena.h"
#include "util/bytes.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::ProcId;
using sim::Payload;
using sim::PayloadArena;
using sim::PayloadArenaScope;
using util::AllocProbe;

TEST(Arena, ResetRecyclesBlocks) {
  Arena arena(1024);
  void* first = arena.allocate(100, 8);
  ASSERT_NE(first, nullptr);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 1024u);

  arena.reset();
  AllocProbe probe(AllocProbe::Scope::kThread);
  void* again = arena.allocate(100, 8);
  const std::uint64_t blocks = probe.blocks();
  EXPECT_EQ(again, first);  // same block, same cursor
  EXPECT_EQ(blocks, 0u);    // recycled, not reallocated
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, AlignmentIsRespected) {
  Arena arena;
  (void)arena.allocate(1, 1);  // misalign the cursor
  for (const std::size_t align : {2u, 8u, 16u, 64u}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(Arena, OversizedRequestsGetDedicatedBlocks) {
  Arena arena(256);
  void* big = arena.allocate(10000, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
  // The small block list still serves small requests after the spill.
  void* small = arena.allocate(16, 8);
  ASSERT_NE(small, nullptr);

  // Both sizes recycle across a reset.
  arena.reset();
  AllocProbe probe(AllocProbe::Scope::kThread);
  (void)arena.allocate(10000, 8);
  (void)arena.allocate(16, 8);
  EXPECT_EQ(probe.blocks(), 0u);
}

TEST(Arena, HighWaterTracksTheLargestCycle) {
  Arena arena;
  (void)arena.allocate(100, 1);
  (void)arena.allocate(100, 1);
  EXPECT_EQ(arena.bytes_used(), 200u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  (void)arena.allocate(50, 1);
  EXPECT_EQ(arena.high_water(), 200u);  // the first cycle still holds it
  EXPECT_EQ(arena.cycles(), 1u);
}

TEST(Arena, PrewarmMakesTheFirstAllocationHeapFree) {
  Arena arena;
  arena.prewarm();
  AllocProbe probe(AllocProbe::Scope::kThread);
  (void)arena.allocate(64, 8);
  EXPECT_EQ(probe.blocks(), 0u);
  arena.prewarm();  // idempotent on a warmed arena
  EXPECT_EQ(probe.blocks(), 0u);
}

TEST(ArenaAllocator, VectorGrowsInTheArena) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v[99], 99);
  EXPECT_GT(arena.bytes_used(), 100 * sizeof(int) - 1);

  // A null-arena allocator is plain heap — same container type either way.
  std::vector<int, ArenaAllocator<int>> heap_backed{ArenaAllocator<int>()};
  heap_backed.assign(v.begin(), v.end());
  EXPECT_EQ(heap_backed[99], 99);

  // Copy construction deliberately drops to the heap, so copies never
  // extend the arena's lifetime obligations.
  auto copy = v;
  EXPECT_EQ(copy.get_allocator().arena(), nullptr);
  EXPECT_EQ(copy[99], 99);
}

TEST(AllocProbe, CountsThisThreadsTraffic) {
  AllocProbe probe(AllocProbe::Scope::kThread);
  {
    auto p = std::make_unique<std::uint64_t>(7);
    EXPECT_EQ(*p, 7u);
  }
  const util::AllocCounters delta = probe.delta();
  EXPECT_GE(delta.blocks, 1u);
  EXPECT_GE(delta.bytes, sizeof(std::uint64_t));
  EXPECT_GE(delta.frees, 1u);
}

TEST(PayloadArena, ResetIsRefusedWhileHandlesLive) {
  PayloadArena arena;
  {
    PayloadArenaScope scope(&arena);
    const Payload big{Bytes(Payload::kInlineCapacity + 10, 1)};
    EXPECT_EQ(arena.live(), 1u);
    EXPECT_FALSE(arena.reset());  // refused, not invalidated
    EXPECT_EQ(arena.skipped_resets(), 1u);

    const Payload copy = big;  // refcount, not a second live buffer
    EXPECT_EQ(arena.live(), 1u);
  }
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_TRUE(arena.reset());
  EXPECT_EQ(arena.skipped_resets(), 1u);
}

TEST(PayloadArena, WarmedArenaServesBuffersWithoutTheHeap) {
  PayloadArena arena;
  arena.prewarm();
  PayloadArenaScope scope(&arena);
  Payload::reset_allocation_count();
  Bytes src(Payload::kInlineCapacity + 20, 0x7e);
  AllocProbe probe(AllocProbe::Scope::kThread);
  {
    const Payload p{std::move(src)};
    EXPECT_EQ(probe.blocks(), 0u);  // buffer came from arena
    EXPECT_EQ(Payload::allocations(), 1u);  // still counts as a buffer
    EXPECT_EQ(arena.live(), 1u);
    EXPECT_EQ(p.view()[0], 0x7e);
  }
  EXPECT_EQ(arena.live(), 0u);

  // Scopes nest and restore: inside a null rebind, buffers are heap again.
  {
    PayloadArenaScope heap_scope(nullptr);
    EXPECT_EQ(Payload::bound_arena(), nullptr);
  }
  EXPECT_EQ(Payload::bound_arena(), &arena);
}

TEST(ScratchPool, RecycledCapacityComesBack) {
  // Warm the pool, then check an acquire/recycle round trip reuses the
  // buffer instead of allocating.
  Bytes warm = acquire_scratch();
  warm.resize(512);
  recycle_scratch(std::move(warm));

  AllocProbe probe(AllocProbe::Scope::kThread);
  Bytes buf = acquire_scratch();
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 512u);
  buf.assign(256, 0xCD);
  recycle_scratch(std::move(buf));
  EXPECT_EQ(probe.blocks(), 0u);
}

// ---------------------------------------------------------------------------
// Steady-state zero-allocation runs.

/// Every process broadcasts `payload_size` bytes every phase, staging the
/// bytes through the thread's scratch pool — the shape the codec Writer
/// produces. Payloads exceed the inline capacity so the shared-buffer path
/// (and thus the payload arenas) is what's under test.
class EchoBroadcaster final : public sim::Process {
 public:
  explicit EchoBroadcaster(std::size_t payload_size)
      : payload_size_(payload_size) {}

  void on_phase(sim::Context& ctx) override {
    Bytes buf = acquire_scratch();
    buf.assign(payload_size_, static_cast<std::uint8_t>(ctx.phase()));
    ctx.send_all(std::move(buf), 0);
  }

  std::optional<ba::Value> decision() const override { return 0; }

 private:
  std::size_t payload_size_;
};

/// Broadcasts one payload built in phase 1 and re-sent as a handle copy in
/// every later phase. Pool workers are new threads each run with cold
/// thread-local scratch pools, so the pooled steady-state test needs sends
/// that allocate nothing anywhere — handle copies are exactly that.
class CachedBroadcaster final : public sim::Process {
 public:
  explicit CachedBroadcaster(std::size_t payload_size)
      : payload_size_(payload_size) {}

  void on_phase(sim::Context& ctx) override {
    if (ctx.phase() == 1) {
      cached_ = Payload{Bytes(payload_size_, 0xAB)};
    }
    ctx.send_all(cached_, 0);
  }

  std::optional<ba::Value> decision() const override { return 0; }

 private:
  std::size_t payload_size_;
  Payload cached_;
};

template <typename P>
ba::Protocol probe_protocol(std::size_t payload_size, sim::PhaseNum phases) {
  ba::Protocol p;
  p.name = "arena-probe";
  p.authenticated = false;
  p.supports = [](const BAConfig&) { return true; };
  p.steps = [phases](const BAConfig&) { return phases; };
  p.make = [payload_size](ProcId, const BAConfig&) {
    return std::make_unique<P>(payload_size);
  };
  return p;
}

TEST(SteadyState, SerialBroadcastRunIsAllocationFree) {
  const std::size_t n = 8;
  const sim::PhaseNum phases = 6;
  const ba::Protocol protocol =
      probe_protocol<EchoBroadcaster>(Payload::kInlineCapacity + 8, phases);
  sim::RunArenas arenas;
  ba::ScenarioOptions options;
  options.arenas = &arenas;

  // Warm run: sizes every arena block, envelope vector and scratch buffer.
  (void)ba::run_scenario(protocol, BAConfig{n, 1, 0, 1}, options);
  const auto result = ba::run_scenario(protocol, BAConfig{n, 1, 0, 1}, options);

  EXPECT_EQ(result.allocs.steady_blocks, 0u)
      << result.allocs.steady_bytes << " steady bytes leaked to the heap";
  // Every phase still mints n fresh shared buffers — from the arenas.
  EXPECT_EQ(result.allocs.payload_buffers, n * phases);
  EXPECT_GT(result.allocs.arena_payload_high_water, 0u);
  EXPECT_GT(result.allocs.arena_scratch_high_water, 0u);
  EXPECT_EQ(arenas.skipped_resets(), 0u);
  EXPECT_EQ(result.metrics.messages_total(), n * (n - 1) * phases);
}

TEST(SteadyState, PooledBroadcastRunIsAllocationFree) {
  const std::size_t n = 16;
  const sim::PhaseNum phases = 6;
  const ba::Protocol protocol =
      probe_protocol<CachedBroadcaster>(Payload::kInlineCapacity + 8, phases);
  sim::RunArenas arenas;
  ba::ScenarioOptions options;
  options.arenas = &arenas;
  options.threads = 4;

  (void)ba::run_scenario(protocol, BAConfig{n, 1, 0, 1}, options);
  const auto result = ba::run_scenario(protocol, BAConfig{n, 1, 0, 1}, options);

  EXPECT_EQ(result.allocs.steady_blocks, 0u)
      << result.allocs.steady_bytes << " steady bytes leaked to the heap";
  EXPECT_EQ(result.allocs.payload_buffers, n);  // phase 1 only; then handles
  EXPECT_EQ(arenas.skipped_resets(), 0u);
  EXPECT_EQ(result.metrics.messages_total(), n * (n - 1) * phases);
}

// ---------------------------------------------------------------------------
// Determinism: arenas change where bytes live, never what runs compute.

TEST(ArenaRuns, Alg5BitIdenticalWithAndWithoutArenas) {
  const ba::Protocol protocol = ba::make_alg5_protocol(3);
  const BAConfig config{20, 1, 0, 1};
  const ba::ScenarioOptions plain;
  const auto base = ba::run_scenario(protocol, config, plain);

  sim::RunArenas arenas;
  ba::ScenarioOptions with_arenas;
  with_arenas.arenas = &arenas;
  const auto cold = ba::run_scenario(protocol, config, with_arenas);
  const auto warm = ba::run_scenario(protocol, config, with_arenas);

  ba::ScenarioOptions pooled = with_arenas;
  pooled.threads = 4;
  const auto par = ba::run_scenario(protocol, config, pooled);

  for (const auto* r : {&cold, &warm, &par}) {
    EXPECT_EQ(r->decisions, base.decisions);
    EXPECT_EQ(r->evidence, base.evidence);
    EXPECT_TRUE(r->metrics == base.metrics);
    EXPECT_EQ(r->phases_run, base.phases_run);
  }
  EXPECT_EQ(arenas.skipped_resets(), 0u);
}

TEST(ArenaRuns, HistoryRunsSkipPayloadArenasButStillWork) {
  const ba::Protocol protocol = ba::make_alg5_protocol(3);
  const BAConfig config{12, 1, 0, 1};
  ba::ScenarioOptions plain;
  plain.record_history = true;
  const auto base = ba::run_scenario(protocol, config, plain);

  sim::RunArenas arenas;
  ba::ScenarioOptions with_arenas = plain;
  with_arenas.arenas = &arenas;
  const auto result = ba::run_scenario(protocol, config, with_arenas);

  EXPECT_EQ(result.decisions, base.decisions);
  EXPECT_TRUE(result.metrics == base.metrics);
  // History edges hold payload handles that outlive the run, so payload
  // buffers must have come from the heap, not the arenas.
  EXPECT_EQ(result.allocs.arena_payload_high_water, 0u);
  // ...and a second begin_run must not be blocked by lingering handles.
  const auto again = ba::run_scenario(protocol, config, with_arenas);
  EXPECT_EQ(again.decisions, base.decisions);
  EXPECT_EQ(arenas.skipped_resets(), 0u);
}

}  // namespace
}  // namespace dr
