#include "ba/signed_value.h"

#include <gtest/gtest.h>

#include "crypto/key_registry.h"

namespace dr::ba {
namespace {

class SignedValueTest : public ::testing::Test {
 protected:
  crypto::KeyRegistry registry_{6, 42};
  crypto::Verifier verifier_{&registry_};

  crypto::Signer signer(ProcId id) { return crypto::Signer(&registry_, {id}); }
};

TEST_F(SignedValueTest, SingleSignatureChain) {
  const auto s0 = signer(0);
  const SignedValue sv = make_signed(1, s0, 0);
  EXPECT_EQ(sv.value, 1u);
  ASSERT_EQ(sv.chain.size(), 1u);
  EXPECT_EQ(sv.chain[0].signer, 0u);
  EXPECT_TRUE(verify_chain(sv, verifier_));
}

TEST_F(SignedValueTest, ExtendedChainVerifies) {
  const auto s0 = signer(0);
  const auto s1 = signer(1);
  const auto s2 = signer(2);
  SignedValue sv = make_signed(0, s0, 0);
  sv = extend(sv, s1, 1);
  sv = extend(sv, s2, 2);
  EXPECT_TRUE(verify_chain(sv, verifier_));
  EXPECT_EQ(chain_signers(sv), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_TRUE(distinct_signers(sv));
  EXPECT_TRUE(contains_signer(sv, 1));
  EXPECT_FALSE(contains_signer(sv, 3));
}

TEST_F(SignedValueTest, ValueTamperBreaksEverySignature) {
  const auto s0 = signer(0);
  const auto s1 = signer(1);
  SignedValue sv = extend(make_signed(0, s0, 0), s1, 1);
  sv.value = 1;
  EXPECT_FALSE(verify_chain(sv, verifier_));
}

TEST_F(SignedValueTest, InnerSignatureRemovalDetected) {
  const auto s0 = signer(0);
  const auto s1 = signer(1);
  const auto s2 = signer(2);
  SignedValue sv = extend(extend(make_signed(0, s0, 0), s1, 1), s2, 2);
  // Drop the middle signature: the outer signature no longer covers the
  // remaining prefix.
  sv.chain.erase(sv.chain.begin() + 1);
  EXPECT_FALSE(verify_chain(sv, verifier_));
}

TEST_F(SignedValueTest, ReorderingDetected) {
  const auto s0 = signer(0);
  const auto s1 = signer(1);
  const auto s2 = signer(2);
  SignedValue sv = extend(extend(make_signed(0, s0, 0), s1, 1), s2, 2);
  std::swap(sv.chain[1], sv.chain[2]);
  EXPECT_FALSE(verify_chain(sv, verifier_));
}

TEST_F(SignedValueTest, ChainSplicingDetected) {
  // Take the head of one chain and the tail of another over the same value.
  const auto s0 = signer(0);
  const auto s1 = signer(1);
  const auto s2 = signer(2);
  const SignedValue via1 = extend(make_signed(0, s0, 0), s1, 1);
  const SignedValue via2 = extend(make_signed(0, s0, 0), s2, 2);
  SignedValue spliced = via1;
  spliced.chain.push_back(via2.chain[1]);  // s2's signature covered a
                                           // different prefix
  EXPECT_FALSE(verify_chain(spliced, verifier_));
}

TEST_F(SignedValueTest, TruncationStillVerifiesAsPrefix) {
  // Prefixes of a valid chain are themselves valid chains (the model allows
  // anyone to strip *outer* signatures; protocols must not rely on outer
  // signatures for integrity of inner ones).
  const auto s0 = signer(0);
  const auto s1 = signer(1);
  SignedValue sv = extend(make_signed(0, s0, 0), s1, 1);
  sv.chain.pop_back();
  EXPECT_TRUE(verify_chain(sv, verifier_));
}

TEST_F(SignedValueTest, DuplicateSignersDetected) {
  const auto s0 = signer(0);
  SignedValue sv = extend(make_signed(0, s0, 0), s0, 0);
  EXPECT_TRUE(verify_chain(sv, verifier_));  // cryptographically fine
  EXPECT_FALSE(distinct_signers(sv));        // but not distinct
}

TEST_F(SignedValueTest, EncodeDecodeRoundTrip) {
  const auto s0 = signer(0);
  const auto s3 = signer(3);
  const SignedValue sv = extend(make_signed(1, s0, 0), s3, 3);
  const auto decoded = decode_signed_value(encode(sv));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sv);
  EXPECT_TRUE(verify_chain(*decoded, verifier_));
}

TEST_F(SignedValueTest, DecodeRejectsTrailingGarbage) {
  const auto s0 = signer(0);
  Bytes enc = encode(make_signed(1, s0, 0));
  enc.push_back(0xff);
  EXPECT_EQ(decode_signed_value(enc), std::nullopt);
}

TEST_F(SignedValueTest, DecodeRejectsTruncation) {
  const auto s0 = signer(0);
  Bytes enc = encode(make_signed(1, s0, 0));
  enc.resize(enc.size() - 3);
  EXPECT_EQ(decode_signed_value(enc), std::nullopt);
}

TEST_F(SignedValueTest, DecodeRejectsEmptyAndGarbage) {
  EXPECT_EQ(decode_signed_value(Bytes{}), std::nullopt);
  EXPECT_EQ(decode_signed_value(Bytes{0xde, 0xad}), std::nullopt);
}

TEST_F(SignedValueTest, EmptyChainVerifiesTrivially) {
  const SignedValue sv{5, {}};
  EXPECT_TRUE(verify_chain(sv, verifier_));
  EXPECT_TRUE(distinct_signers(sv));
  const auto decoded = decode_signed_value(encode(sv));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sv);
}

TEST_F(SignedValueTest, CoalitionCannotForgeCorrectSignature) {
  // The coalition holds keys 4 and 5; it cannot produce a chain whose
  // first signature claims to be processor 0.
  crypto::Signer coalition(&registry_, {4, 5});
  SignedValue forged = make_signed(1, coalition, 4);
  forged.chain[0].signer = 0;  // relabel
  EXPECT_FALSE(verify_chain(forged, verifier_));
}

}  // namespace
}  // namespace dr::ba
