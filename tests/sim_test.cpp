#include "sim/runner.h"

#include <gtest/gtest.h>

#include <memory>

#include "codec/codec.h"
#include "util/bytes.h"

namespace dr::sim {
namespace {

/// Echoes every received payload back to its sender, and records the phase
/// in which each message arrived.
class EchoProcess final : public Process {
 public:
  void on_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      arrivals_.emplace_back(env.sent_phase, ctx.phase());
      ctx.send(env.from, env.payload, 0);
    }
  }
  std::optional<Value> decision() const override { return std::nullopt; }

  const std::vector<std::pair<PhaseNum, PhaseNum>>& arrivals() const {
    return arrivals_;
  }

 private:
  std::vector<std::pair<PhaseNum, PhaseNum>> arrivals_;
};

/// Sends one message to processor `to` in phase 1, then stays quiet.
class OneShotProcess final : public Process {
 public:
  explicit OneShotProcess(ProcId to) : to_(to) {}
  void on_phase(Context& ctx) override {
    if (ctx.phase() == 1) ctx.send(to_, to_bytes("ping"), 2);
  }
  std::optional<Value> decision() const override { return Value{7}; }

 private:
  ProcId to_;
};

TEST(Runner, MessagesArriveExactlyOnePhaseLater) {
  RunConfig cfg{.n = 2, .t = 0, .transmitter = 0, .value = 0, .seed = 1};
  Runner runner(cfg);
  runner.install(0, std::make_unique<OneShotProcess>(1));
  auto* echo_raw = new EchoProcess();
  runner.install(1, std::unique_ptr<Process>(echo_raw));
  runner.run(3);
  ASSERT_EQ(echo_raw->arrivals().size(), 1u);
  EXPECT_EQ(echo_raw->arrivals()[0], (std::pair<PhaseNum, PhaseNum>{1, 2}));
}

TEST(Runner, MetricsCountMessagesAndSignatures) {
  RunConfig cfg{.n = 3, .t = 1, .transmitter = 0, .value = 0, .seed = 1};
  Runner runner(cfg);
  runner.mark_faulty(2);
  runner.install(0, std::make_unique<OneShotProcess>(1));  // correct, 2 sigs
  runner.install(1, std::make_unique<OneShotProcess>(2));  // correct
  runner.install(2, std::make_unique<OneShotProcess>(0));  // faulty
  const auto result = runner.run(1);
  EXPECT_EQ(result.metrics.messages_total(), 3u);
  EXPECT_EQ(result.metrics.messages_by_correct(), 2u);
  EXPECT_EQ(result.metrics.signatures_by_correct(), 4u);
  EXPECT_EQ(result.metrics.sent_by(0), 1u);
  EXPECT_EQ(result.metrics.received_from_correct(1), 1u);
  EXPECT_EQ(result.metrics.received_from_correct(0), 0u);  // sender faulty
  // Signature-exchange accounting: 0 sent 2 sigs to 1.
  EXPECT_EQ(result.metrics.signatures_exchanged(0), 2u);
  EXPECT_EQ(result.metrics.signatures_exchanged(1), 2u + 2u);  // also sent
  // Byte accounting: two correct "ping" payloads of 4 bytes each.
  EXPECT_EQ(result.metrics.bytes_by_correct(), 8u);
  EXPECT_EQ(result.metrics.max_payload_by_correct(), 4u);
}

TEST(Runner, HistoryRecordingMatchesTraffic) {
  RunConfig cfg{.n = 2, .t = 0, .transmitter = 0, .value = 42, .seed = 1,
                .record_history = true};
  Runner runner(cfg);
  runner.install(0, std::make_unique<OneShotProcess>(1));
  runner.install(1, std::make_unique<EchoProcess>());
  const auto result = runner.run(3);
  EXPECT_EQ(result.history.phases(), 2u);  // ping at 1, echo at 2
  EXPECT_EQ(result.history.phase(1).edges().size(), 1u);
  EXPECT_EQ(result.history.phase(2).edges().size(), 1u);
  EXPECT_EQ(result.history.transmitter(), 0u);
  ASSERT_TRUE(result.history.initial_value().has_value());
  EXPECT_EQ(decode_u64(*result.history.initial_value()), 42u);
}

TEST(Runner, HistoryOffByDefault) {
  RunConfig cfg{.n = 2, .t = 0, .transmitter = 0, .value = 0, .seed = 1};
  Runner runner(cfg);
  runner.install(0, std::make_unique<OneShotProcess>(1));
  runner.install(1, std::make_unique<EchoProcess>());
  const auto result = runner.run(2);
  EXPECT_EQ(result.history.phases(), 0u);
}

TEST(Runner, FaultyShareCoalitionSigner) {
  RunConfig cfg{.n = 4, .t = 2, .transmitter = 0, .value = 0, .seed = 1};
  Runner runner(cfg);
  runner.mark_faulty(1);
  runner.mark_faulty(3);
  const crypto::Signer& s1 = runner.signer_for(1);
  const crypto::Signer& s3 = runner.signer_for(3);
  EXPECT_EQ(&s1, &s3);
  EXPECT_TRUE(s1.holds(1));
  EXPECT_TRUE(s1.holds(3));
  EXPECT_FALSE(s1.holds(0));
  const crypto::Signer& s0 = runner.signer_for(0);
  EXPECT_TRUE(s0.holds(0));
  EXPECT_FALSE(s0.holds(1));
}

TEST(Runner, LastActivePhaseTracksSends) {
  RunConfig cfg{.n = 2, .t = 0, .transmitter = 0, .value = 0, .seed = 1};
  Runner runner(cfg);
  runner.install(0, std::make_unique<OneShotProcess>(1));
  runner.install(1, std::make_unique<EchoProcess>());
  const auto result = runner.run(5);
  // Ping at phase 1, echo at phase 2, then silence.
  EXPECT_EQ(result.metrics.last_active_phase(), 2u);
}

TEST(RunnerDeathTest, RunWithoutProcessesAborts) {
  Runner runner(RunConfig{.n = 2, .t = 0});
  runner.install(0, std::make_unique<EchoProcess>());
  // Processor 1 has no process installed.
  EXPECT_DEATH({ runner.run(1); }, "Precondition");
}

TEST(RunnerDeathTest, MarkFaultyAfterSignersBuiltAborts) {
  Runner runner(RunConfig{.n = 2, .t = 1});
  runner.signer_for(0);  // forces signer construction
  EXPECT_DEATH({ runner.mark_faulty(1); }, "Precondition");
}

TEST(RunnerDeathTest, OutOfRangeIdsAbort) {
  Runner runner(RunConfig{.n = 2, .t = 0});
  EXPECT_DEATH({ runner.install(5, std::make_unique<EchoProcess>()); },
               "Precondition");
  EXPECT_DEATH({ runner.mark_faulty(7); }, "Precondition");
}

class DecideValue final : public Process {
 public:
  explicit DecideValue(std::optional<Value> v) : v_(v) {}
  void on_phase(Context&) override {}
  std::optional<Value> decision() const override { return v_; }

 private:
  std::optional<Value> v_;
};

RunResult make_result(std::vector<std::optional<Value>> decisions,
                      std::vector<bool> faulty) {
  RunResult r{.decisions = std::move(decisions),
              .evidence = {},
              .faulty = std::move(faulty),
              .metrics = Metrics(2),
              .history = {},
              .phases_run = 0};
  return r;
}

TEST(AgreementCheck, AllCorrectAgreeOnTransmitterValue) {
  const auto r = make_result({Value{5}, Value{5}}, {false, false});
  const auto check = check_byzantine_agreement(r, 0, 5);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
  EXPECT_EQ(check.agreed_value, Value{5});
}

TEST(AgreementCheck, DisagreementDetected) {
  const auto r = make_result({Value{5}, Value{6}}, {false, false});
  const auto check = check_byzantine_agreement(r, 0, 5);
  EXPECT_FALSE(check.agreement);
}

TEST(AgreementCheck, WrongValueViolatesValidity) {
  const auto r = make_result({Value{6}, Value{6}}, {false, false});
  const auto check = check_byzantine_agreement(r, 0, 5);
  EXPECT_TRUE(check.agreement);
  EXPECT_FALSE(check.validity);
}

TEST(AgreementCheck, FaultyTransmitterMakesValidityVacuous) {
  const auto r = make_result({std::nullopt, Value{6}}, {true, false});
  const auto check = check_byzantine_agreement(r, 0, 5);
  EXPECT_TRUE(check.agreement);  // the single correct processor decided
  EXPECT_TRUE(check.validity);
}

TEST(AgreementCheck, UndecidedCorrectProcessorFailsAgreement) {
  const auto r = make_result({Value{5}, std::nullopt}, {false, false});
  const auto check = check_byzantine_agreement(r, 0, 5);
  EXPECT_FALSE(check.agreement);
}

TEST(AgreementCheck, FaultyDecisionsIgnored) {
  const auto r = make_result({Value{5}, std::nullopt}, {false, true});
  const auto check = check_byzantine_agreement(r, 0, 5);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

}  // namespace
}  // namespace dr::sim
