// Frame layer: round-trips under arbitrary chunking, and rejection of
// every malformed-frame class — truncation, CRC mismatch, oversized
// declared length, wrong version, spoofed sender — without a crash and
// without misattribution.
#include <gtest/gtest.h>

#include "codec/codec.h"
#include "codec/crc32.h"
#include "net/frame.h"
#include "util/rng.h"

namespace dr::net {
namespace {

Frame payload_frame(ProcId from, ProcId to, PhaseNum phase, Bytes payload) {
  return Frame{FrameKind::kPayload, from, to, phase, std::move(payload)};
}

/// A frame with full control over the raw body fields, for forging
/// headers the public encoder refuses to produce. The CRC is valid by
/// construction — these are Byzantine frames, not line corruption.
Bytes forge(std::uint8_t version, std::uint8_t kind, ProcId from, ProcId to,
            PhaseNum phase, const Bytes& payload) {
  Writer w;
  w.u8(version);
  w.u8(kind);
  w.u32(from);
  w.u32(to);
  w.u32(phase);
  w.bytes(payload);
  const Bytes body = std::move(w).take();
  Bytes out;
  put_u32le(out, static_cast<std::uint32_t>(body.size() + 4));
  append(out, body);
  put_u32le(out, crc32(body));
  return out;
}

TEST(NetFrame, RoundTripsOneFrame) {
  const Frame sent = payload_frame(3, 7, 12, Bytes{1, 2, 3, 255, 0});
  FrameAssembler assembler(/*link_peer=*/3, /*self=*/7);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(encode_frame(sent), out, stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], sent);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected(), 0u);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(NetFrame, RoundTripsUnderByteWiseChunking) {
  const Frame a = payload_frame(1, 2, 5, Bytes{9, 8, 7});
  const Frame b = Frame{FrameKind::kDone, 1, 2, 6, {}};
  Bytes stream = encode_frame(a);
  append(stream, encode_frame(b));

  FrameAssembler assembler(1, 2);
  std::vector<Frame> out;
  FrameStats stats;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    assembler.feed(ByteView(stream.data() + i, 1), out, stats);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);
  EXPECT_EQ(stats.accepted, 2u);
}

TEST(NetFrame, ManyFramesInOneChunk) {
  Bytes stream;
  for (PhaseNum k = 1; k <= 20; ++k) {
    append(stream, encode_frame(payload_frame(4, 0, k, Bytes{uint8_t(k)})));
  }
  FrameAssembler assembler(4, 0);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(stats.accepted, 20u);
}

TEST(NetFrame, TruncatedFrameStaysBuffered) {
  const Bytes wire = encode_frame(payload_frame(0, 1, 2, Bytes(100, 42)));
  FrameAssembler assembler(0, 1);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(ByteView(wire.data(), wire.size() - 1), out, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(assembler.buffered(), wire.size() - 1);
  // The missing byte completes the frame.
  assembler.feed(ByteView(wire.data() + wire.size() - 1, 1), out, stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(NetFrame, CrcMismatchDropsExactlyThatFrame) {
  Bytes corrupted = encode_frame(payload_frame(5, 6, 1, Bytes{1, 2, 3}));
  corrupted[6] ^= 0x40;  // flip a body bit
  Bytes stream = corrupted;
  const Frame good = payload_frame(5, 6, 2, Bytes{4, 5});
  append(stream, encode_frame(good));

  FrameAssembler assembler(5, 6);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  ASSERT_EQ(out.size(), 1u);  // resynced on the declared length
  EXPECT_EQ(out[0], good);
  EXPECT_EQ(stats.bad_crc, 1u);
  EXPECT_EQ(stats.accepted, 1u);
}

TEST(NetFrame, WrongVersionRejected) {
  Bytes stream = forge(kFrameVersion + 1, 0, 2, 3, 1, Bytes{1});
  append(stream, encode_frame(payload_frame(2, 3, 1, Bytes{1})));
  FrameAssembler assembler(2, 3);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  EXPECT_EQ(stats.bad_version, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  ASSERT_EQ(out.size(), 1u);
}

TEST(NetFrame, UnknownKindRejected) {
  const Bytes stream = forge(kFrameVersion, 9, 2, 3, 1, Bytes{1});
  FrameAssembler assembler(2, 3);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.bad_structure, 1u);
}

TEST(NetFrame, TrailingGarbageInBodyRejected) {
  // A valid body plus extra bytes, CRC recomputed over the whole thing:
  // structurally invalid even though the checksum passes.
  Writer w;
  w.u8(kFrameVersion);
  w.u8(0);
  w.u32(2);
  w.u32(3);
  w.u32(1);
  w.bytes(Bytes{1});
  Bytes body = std::move(w).take();
  body.push_back(0xEE);
  Bytes stream;
  put_u32le(stream, static_cast<std::uint32_t>(body.size() + 4));
  append(stream, body);
  put_u32le(stream, crc32(body));

  FrameAssembler assembler(2, 3);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.bad_structure, 1u);
}

TEST(NetFrame, OversizedDeclaredLengthPoisonsTheLink) {
  Bytes stream;
  put_u32le(stream, static_cast<std::uint32_t>(kMaxFrameBody + 1));
  stream.push_back(0xAA);
  FrameAssembler assembler(0, 1);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  EXPECT_TRUE(assembler.poisoned());
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_EQ(stats.poisoned_bytes, stream.size());

  // Even a perfectly valid frame afterwards is discarded: the resync
  // anchor is gone.
  assembler.feed(encode_frame(payload_frame(0, 1, 1, Bytes{1})), out, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(NetFrame, SpoofedFromDroppedNeverMisattributed) {
  // Peer 4's link carries a frame claiming from=2: drop, don't deliver
  // under either identity.
  const Bytes stream = forge(kFrameVersion, 0, /*from=*/2, /*to=*/1, 3,
                             Bytes{7});
  FrameAssembler assembler(/*link_peer=*/4, /*self=*/1);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.spoofed_from, 1u);
}

TEST(NetFrame, MisroutedToDropped) {
  const Bytes stream = forge(kFrameVersion, 0, /*from=*/4, /*to=*/9, 3,
                             Bytes{7});
  FrameAssembler assembler(/*link_peer=*/4, /*self=*/1);
  std::vector<Frame> out;
  FrameStats stats;
  assembler.feed(stream, out, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.misrouted, 1u);
}

TEST(NetFrame, AcceptedFramesAlwaysCarryTheLinkIdentity) {
  // Seeded fuzz: a stream of valid frames with random single-byte
  // mutations. Whatever survives decoding must carry from == link_peer
  // and to == self; nothing may crash.
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes stream;
    const std::size_t frames = 1 + rng.below(8);
    for (std::size_t i = 0; i < frames; ++i) {
      Bytes payload(rng.below(40), 0);
      for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next());
      append(stream,
             encode_frame(payload_frame(
                 static_cast<ProcId>(rng.below(4)),
                 static_cast<ProcId>(rng.below(4)),
                 static_cast<PhaseNum>(rng.below(10)), std::move(payload))));
    }
    const std::size_t mutations = rng.below(6);
    for (std::size_t i = 0; i < mutations && !stream.empty(); ++i) {
      stream[rng.below(stream.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    FrameAssembler assembler(/*link_peer=*/2, /*self=*/1);
    std::vector<Frame> out;
    FrameStats stats;
    // Random chunking too.
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + rng.below(23), stream.size() - pos);
      assembler.feed(ByteView(stream.data() + pos, len), out, stats);
      pos += len;
    }
    for (const Frame& frame : out) {
      EXPECT_EQ(frame.from, 2u);
      EXPECT_EQ(frame.to, 1u);
    }
  }
}

TEST(NetFrame, PureGarbageNeverCrashes) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes garbage(rng.below(512), 0);
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next());
    FrameAssembler assembler(0, 1);
    std::vector<Frame> out;
    FrameStats stats;
    assembler.feed(garbage, out, stats);
    for (const Frame& frame : out) {
      EXPECT_EQ(frame.from, 0u);
      EXPECT_EQ(frame.to, 1u);
    }
  }
}

TEST(NetFrame, Crc32MatchesKnownVector) {
  // The standard check value: CRC-32("123456789") = 0xCBF43926.
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  // Incremental form agrees.
  std::uint32_t state = crc32_init();
  state = crc32_update(state, ByteView(data.data(), 4));
  state = crc32_update(state, ByteView(data.data() + 4, 5));
  EXPECT_EQ(crc32_final(state), 0xCBF43926u);
}

}  // namespace
}  // namespace dr::net
