// proof::Store semantics: the heavy admit path is the only door in, the
// light path is a pure digest lookup (no hashing, no signature checks —
// asserted through the verification-cache counters), expiry evicts at the
// exact tick, realms are isolated, the table survives a save/load round
// trip, and the whole object is clean under concurrent hammering (this
// suite runs under ThreadSanitizer in CI via the `proof` ctest label).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ba/registry.h"
#include "proof/store.h"
#include "proof/transferable.h"

namespace dr::proof {
namespace {

using ba::BAConfig;

ByteView view(const Bytes& b) { return ByteView{b.data(), b.size()}; }

Realm make_realm(const BAConfig& config, std::uint64_t seed) {
  return Realm{.scheme = sim::SchemeKind::kHmac,
               .n = config.n,
               .t = config.t,
               .transmitter = config.transmitter,
               .seed = seed,
               .merkle_height = 6};
}

/// One honest run's proofs, encoded, plus their digests.
struct Corpus {
  Realm realm;
  std::vector<Bytes> encoded;
  std::vector<crypto::Digest> digests;
};

Corpus make_corpus(std::uint64_t seed) {
  const BAConfig config{5, 2, 0, 1};
  Corpus corpus;
  corpus.realm = make_realm(config, seed);
  const sim::RunResult run = ba::run_scenario(
      *ba::find_protocol("dolev-strong"), config, seed);
  for (ProcId p = 0; p < run.evidence.size(); ++p) {
    const auto proof =
        from_evidence(corpus.realm, p, view(run.evidence[p]));
    if (!proof.has_value()) continue;
    corpus.encoded.push_back(encode_transferable(*proof));
    corpus.digests.push_back(digest(*proof));
  }
  EXPECT_EQ(corpus.encoded.size(), config.n);
  return corpus;
}

TEST(ProofStore, AdmitThenLightPathNeverReverifies) {
  const Corpus corpus = make_corpus(7);
  Store store;
  crypto::VerifyCache cache;
  for (const Bytes& p : corpus.encoded) {
    EXPECT_EQ(store.admit(view(p), 1000, &cache), Verdict::kOk);
  }
  const std::size_t heavy_hits = cache.hits();
  const std::size_t heavy_misses = cache.misses();
  EXPECT_GT(heavy_misses, 0u) << "cold admits must verify for real";

  // Light path: contains/get/proven answer from the digest table alone.
  // The shared cache sees zero traffic — nothing is hashed or verified.
  for (const crypto::Digest& d : corpus.digests) {
    EXPECT_TRUE(store.contains(d));
    EXPECT_TRUE(store.get(d).has_value());
  }
  EXPECT_TRUE(store.proven(corpus.realm, Value{1}));
  EXPECT_FALSE(store.proven(corpus.realm, Value{2}));
  EXPECT_EQ(cache.hits(), heavy_hits);
  EXPECT_EQ(cache.misses(), heavy_misses);

  const Store::Stats stats = store.stats();
  EXPECT_EQ(stats.entries, corpus.encoded.size());
  EXPECT_EQ(stats.admitted, corpus.encoded.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.light_hits, 0u);
}

TEST(ProofStore, DuplicateAdmitSkipsVerification) {
  const Corpus corpus = make_corpus(7);
  Store store;
  crypto::VerifyCache cache;
  ASSERT_EQ(store.admit(view(corpus.encoded[1]), 0, &cache), Verdict::kOk);
  const std::size_t hits = cache.hits();
  const std::size_t misses = cache.misses();
  // Re-admitting a live digest is the light path in disguise: kOk with no
  // cache traffic at all.
  EXPECT_EQ(store.admit(view(corpus.encoded[1]), 5, &cache), Verdict::kOk);
  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);
  const Store::Stats stats = store.stats();
  EXPECT_EQ(stats.duplicate, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ProofStore, ForgeriesNeverEnterTheTable) {
  const Corpus corpus = make_corpus(7);
  Store store;
  Bytes tampered = corpus.encoded[2];
  tampered.back() ^= 0x01;  // inside the terminal signature's bytes
  EXPECT_NE(store.admit(view(tampered), 0), Verdict::kOk);
  Bytes garbage = {0x01, 0x02, 0x03};
  EXPECT_EQ(store.admit(view(garbage), 0), Verdict::kMalformedChain);
  const Store::Stats stats = store.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_FALSE(store.proven(corpus.realm, Value{1}));
}

TEST(ProofStore, SweepEvictsAtTheExactTick) {
  const Corpus corpus = make_corpus(7);
  Store store(Store::Options{.ttl_ms = 100});
  ASSERT_EQ(store.admit(view(corpus.encoded[0]), 1000), Verdict::kOk);
  ASSERT_EQ(store.admit(view(corpus.encoded[1]), 1050), Verdict::kOk);

  EXPECT_EQ(store.sweep(1099), 0u);  // one tick early: nothing goes
  EXPECT_EQ(store.sweep(1100), 1u);  // admitted_ms + ttl == now: evicted
  EXPECT_FALSE(store.contains(corpus.digests[0]));
  EXPECT_TRUE(store.contains(corpus.digests[1]));
  EXPECT_EQ(store.sweep(1150), 1u);

  const Store::Stats stats = store.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.sweeps, 3u);
  EXPECT_EQ(stats.tombstones, 2u);

  // ttl 0: entries are immortal, sweeps are counted no-ops.
  Store immortal;
  ASSERT_EQ(immortal.admit(view(corpus.encoded[0]), 0), Verdict::kOk);
  EXPECT_EQ(immortal.sweep(std::uint64_t{1} << 62), 0u);
  EXPECT_TRUE(immortal.contains(corpus.digests[0]));
}

TEST(ProofStore, RealmsAreIsolated) {
  const Corpus a = make_corpus(7);
  const Corpus b = make_corpus(8);  // same shape, different key universe
  ASSERT_NE(realm_key(a.realm), realm_key(b.realm));
  Store store;
  for (const Bytes& p : a.encoded) {
    ASSERT_EQ(store.admit(view(p), 0), Verdict::kOk);
  }
  // Realm A's value is proven in realm A — and invisible from realm B,
  // even though both realms committed the same value through the same
  // protocol. A replayed proof convinces nobody outside its realm.
  EXPECT_TRUE(store.proven(a.realm, Value{1}));
  EXPECT_FALSE(store.proven(b.realm, Value{1}));
  EXPECT_EQ(store.digests_in(a.realm).size(), a.encoded.size());
  EXPECT_TRUE(store.digests_in(b.realm).empty());

  for (const Bytes& p : b.encoded) {
    ASSERT_EQ(store.admit(view(p), 0), Verdict::kOk);
  }
  EXPECT_TRUE(store.proven(b.realm, Value{1}));
  EXPECT_EQ(store.digests_in(a.realm), a.digests)
      << "insertion order within a realm must be preserved";
  EXPECT_EQ(store.digests_in(b.realm), b.digests);
}

TEST(ProofStore, SaveLoadRoundTrip) {
  const Corpus corpus = make_corpus(7);
  const std::string path = ::testing::TempDir() + "proof_store_rt.bin";
  {
    Store store;
    for (const Bytes& p : corpus.encoded) {
      ASSERT_EQ(store.admit(view(p), 42), Verdict::kOk);
    }
    ASSERT_TRUE(store.save(path));
  }
  Store loaded;
  EXPECT_EQ(loaded.load(path), corpus.encoded.size());
  for (const crypto::Digest& d : corpus.digests) {
    EXPECT_TRUE(loaded.contains(d));
  }
  EXPECT_EQ(loaded.digests_in(corpus.realm), corpus.digests);
  std::remove(path.c_str());
}

TEST(ProofStore, TamperedStoreFileIsHarmless) {
  const Corpus corpus = make_corpus(7);
  const std::string path = ::testing::TempDir() + "proof_store_tampered.bin";
  {
    Store store;
    for (const Bytes& p : corpus.encoded) {
      ASSERT_EQ(store.admit(view(p), 42), Verdict::kOk);
    }
    ASSERT_TRUE(store.save(path));
  }
  // Flip one byte near the end of the file (inside a serialized proof's
  // signature bytes): that record is re-verified at load and dropped.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -2, SEEK_END), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  Store loaded;
  EXPECT_EQ(loaded.load(path), corpus.encoded.size() - 1);
  const Store::Stats stats = loaded.stats();
  EXPECT_EQ(stats.entries, corpus.encoded.size() - 1);
  EXPECT_EQ(stats.rejected, 1u);
  std::remove(path.c_str());
}

TEST(ProofStore, ConcurrentAdmitQuerySweepIsClean) {
  // The daemon shares one store between its verify path and its GC timer.
  // Hammer all paths from several threads; ThreadSanitizer (CI runs this
  // suite under -L proof in the tsan job) certifies the locking, and the
  // final stats certify that nothing was lost or double-counted.
  const Corpus a = make_corpus(7);
  const Corpus b = make_corpus(8);
  Store store(Store::Options{.ttl_ms = 1000});
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      const Corpus& mine = (id % 2 == 0) ? a : b;
      for (int round = 0; round < kRounds; ++round) {
        for (const Bytes& p : mine.encoded) {
          EXPECT_EQ(store.admit(view(p), 0), Verdict::kOk);
        }
        for (const crypto::Digest& d : mine.digests) {
          EXPECT_TRUE(store.contains(d));
        }
        EXPECT_TRUE(store.proven(mine.realm, Value{1}));
        if (round % 10 == 9) (void)store.sweep(500);  // before any expiry
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const Store::Stats stats = store.stats();
  EXPECT_EQ(stats.entries, a.encoded.size() + b.encoded.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.tombstones, 0u);
  // Every admit beyond the first of each digest was a duplicate.
  EXPECT_EQ(stats.admitted + stats.duplicate,
            static_cast<std::uint64_t>(kThreads) * kRounds *
                a.encoded.size());
  // Everything is still there and still proven after the storm.
  (void)store.sweep(999);
  EXPECT_TRUE(store.proven(a.realm, Value{1}));
  EXPECT_TRUE(store.proven(b.realm, Value{1}));
}

}  // namespace
}  // namespace dr::proof
