#include "ba/proof_of_work.h"

#include <gtest/gtest.h>

#include "crypto/key_registry.h"

namespace dr::ba {
namespace {

TEST(MissingString, RoundTrip) {
  const MissingString s{3, {10, 11, 42}};
  const auto decoded = decode_missing(encode_missing(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, 3u);
  EXPECT_EQ(decoded->missing, s.missing);
}

TEST(MissingString, EmptyListRoundTrip) {
  const MissingString s{0, {}};
  const auto decoded = decode_missing(encode_missing(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->missing.empty());
}

TEST(MissingString, RejectsGarbage) {
  EXPECT_EQ(decode_missing(Bytes{}), std::nullopt);
  EXPECT_EQ(decode_missing(to_bytes("nope")), std::nullopt);
  Bytes enc = encode_missing(MissingString{1, {2}});
  enc.push_back(0);
  EXPECT_EQ(decode_missing(enc), std::nullopt);
}

class EvidenceTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kAlpha = 9;
  static constexpr std::size_t kT = 1;
  // Passive ids from 9; a depth-3 tree at 9..15 (root 9).
  crypto::KeyRegistry registry_{32, 5};
  crypto::Verifier verifier_{&registry_};
  PassiveTree tree_{9, 3};

  Attested make_string(ProcId active, std::uint32_t index,
                       std::vector<ProcId> missing) {
    crypto::Signer signer(&registry_, {active});
    return attest(encode_missing(MissingString{index, std::move(missing)}),
                  signer, active);
  }

  /// Evidence where actives 0..count-1 all list `missing` at `index`.
  MissingEvidence evidence(std::uint32_t index, std::size_t count,
                           const std::vector<ProcId>& missing) {
    MissingEvidence e(index, kAlpha);
    for (ProcId a = 0; a < count; ++a) {
      e.add(make_string(a, index, missing), verifier_);
    }
    return e;
  }
};

TEST_F(EvidenceTest, PiCountsDistinctSigners) {
  MissingEvidence e = evidence(2, 5, {10, 11});
  EXPECT_EQ(e.pi(10), 5u);
  EXPECT_EQ(e.pi(11), 5u);
  EXPECT_EQ(e.pi(12), 0u);
  EXPECT_EQ(e.string_count(), 5u);
}

TEST_F(EvidenceTest, DuplicateSignerCountedOnce) {
  MissingEvidence e(2, kAlpha);
  e.add(make_string(0, 2, {10}), verifier_);
  e.add(make_string(0, 2, {10, 11}), verifier_);  // same signer again
  EXPECT_EQ(e.pi(10), 1u);
  EXPECT_EQ(e.pi(11), 0u);
}

TEST_F(EvidenceTest, WrongIndexIgnored) {
  MissingEvidence e(2, kAlpha);
  e.add(make_string(0, 3, {10}), verifier_);
  EXPECT_EQ(e.pi(10), 0u);
}

TEST_F(EvidenceTest, NonActiveSignerIgnored) {
  MissingEvidence e(2, kAlpha);
  crypto::Signer passive_signer(&registry_, {20});
  e.add(attest(encode_missing(MissingString{2, {10}}), passive_signer, 20),
        verifier_);
  EXPECT_EQ(e.pi(10), 0u);
}

TEST_F(EvidenceTest, ForgedStringIgnored) {
  MissingEvidence e(2, kAlpha);
  Attested a = make_string(0, 2, {10});
  a.body = encode_missing(MissingString{2, {10, 11}});  // body swapped
  e.add(a, verifier_);
  EXPECT_EQ(e.pi(11), 0u);
}

TEST_F(EvidenceTest, StringsListingSelectsMinimalProof) {
  MissingEvidence e(2, kAlpha);
  e.add(make_string(0, 2, {10}), verifier_);
  e.add(make_string(1, 2, {11}), verifier_);
  e.add(make_string(2, 2, {10, 11}), verifier_);
  const ProcId witnesses[] = {ProcId{10}};
  const auto proof = e.strings_listing(witnesses);
  EXPECT_EQ(proof.size(), 2u);  // strings of signers 0 and 2
}

TEST_F(EvidenceTest, OriginalRootNeedsNoEvidence) {
  MissingEvidence empty(3, kAlpha);
  EXPECT_TRUE(has_proof_of_work(empty, tree_, 1, 3, kAlpha, kT));
  const auto proof = build_proof_of_work(empty, tree_, 1, 3, kAlpha, kT);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(proof->empty());
}

TEST_F(EvidenceTest, DirectConditionOnSubtreeRoot) {
  // Node 2 roots the depth-2 left subtree; its id is 10.
  const std::size_t threshold = kAlpha - 2 * kT;  // 7
  MissingEvidence enough = evidence(2, threshold, {10});
  EXPECT_TRUE(has_proof_of_work(enough, tree_, 2, 2, kAlpha, kT));
  MissingEvidence short_of = evidence(2, threshold - 1, {10});
  EXPECT_FALSE(has_proof_of_work(short_of, tree_, 2, 2, kAlpha, kT));
}

TEST_F(EvidenceTest, ChildWitnessCondition) {
  // Node 2 (id 10) not directly confirmed, but a node in each child
  // subtree is: left child 4 (id 12), right child 5 (id 13).
  const std::size_t threshold = kAlpha - 2 * kT;
  MissingEvidence e = evidence(2, threshold, {12, 13});
  EXPECT_TRUE(has_proof_of_work(e, tree_, 2, 2, kAlpha, kT));
  // Only one side confirmed: no proof.
  MissingEvidence one_side = evidence(2, threshold, {12});
  EXPECT_FALSE(has_proof_of_work(one_side, tree_, 2, 2, kAlpha, kT));
}

TEST_F(EvidenceTest, LeafSubtreeHasNoChildCondition) {
  // Node 4 roots a depth-1 subtree (a leaf, id 12): only the direct
  // condition applies.
  const std::size_t threshold = kAlpha - 2 * kT;
  MissingEvidence direct = evidence(1, threshold, {12});
  EXPECT_TRUE(has_proof_of_work(direct, tree_, 4, 1, kAlpha, kT));
  MissingEvidence none = evidence(1, threshold, {13});
  EXPECT_FALSE(has_proof_of_work(none, tree_, 4, 1, kAlpha, kT));
}

TEST_F(EvidenceTest, DepthMismatchRejected) {
  MissingEvidence e = evidence(2, kAlpha, {10});
  EXPECT_FALSE(has_proof_of_work(e, tree_, 2, 3, kAlpha, kT));  // node 2 has
                                                                // depth 2
}

TEST_F(EvidenceTest, BuildProofVerifiesAtReceiver) {
  // End-to-end: active builds a proof, a root re-validates it from the
  // attested strings alone.
  const std::size_t threshold = kAlpha - 2 * kT;
  MissingEvidence sender_side = evidence(2, threshold, {12, 13});
  const auto proof =
      build_proof_of_work(sender_side, tree_, 2, 2, kAlpha, kT);
  ASSERT_TRUE(proof.has_value());
  MissingEvidence receiver_side(2, kAlpha);
  for (const Attested& a : *proof) receiver_side.add(a, verifier_);
  EXPECT_TRUE(has_proof_of_work(receiver_side, tree_, 2, 2, kAlpha, kT));
}

TEST_F(EvidenceTest, BuildProofFailsWithoutWitnesses) {
  MissingEvidence e = evidence(2, 2, {10});
  EXPECT_EQ(build_proof_of_work(e, tree_, 2, 2, kAlpha, kT), std::nullopt);
}

}  // namespace
}  // namespace dr::ba
