#include "util/bytes.h"

#include <gtest/gtest.h>

namespace dr {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001deadbeefff");
  bool ok = false;
  EXPECT_EQ(from_hex("0001deadbeefff", ok), data);
  EXPECT_TRUE(ok);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  bool ok = false;
  EXPECT_TRUE(from_hex("", ok).empty());
  EXPECT_TRUE(ok);
}

TEST(Bytes, HexUppercaseAccepted) {
  bool ok = false;
  EXPECT_EQ(from_hex("DEADBEEF", ok), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_TRUE(ok);
}

TEST(Bytes, HexRejectsOddLength) {
  bool ok = true;
  from_hex("abc", ok);
  EXPECT_FALSE(ok);
}

TEST(Bytes, HexRejectsNonHexChars) {
  bool ok = true;
  from_hex("zz", ok);
  EXPECT_FALSE(ok);
}

TEST(Bytes, Concat) {
  const Bytes a{1, 2};
  const Bytes b{3};
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat({}, b), b);
  EXPECT_EQ(concat(a, {}), a);
}

TEST(Bytes, AppendStringView) {
  Bytes out{0x41};
  append(out, std::string_view("BC"));
  EXPECT_EQ(out, (Bytes{0x41, 0x42, 0x43}));
}

TEST(Bytes, CtEqual) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  const Bytes d{1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, AsBytesAndToBytes) {
  const auto view = as_bytes("hi");
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 'h');
  EXPECT_EQ(to_bytes("hi"), (Bytes{'h', 'i'}));
}

}  // namespace
}  // namespace dr
