#include "codec/codec.h"

#include <gtest/gtest.h>

#include <limits>

namespace dr {
namespace {

TEST(Codec, U64RoundTrip) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{300}, std::uint64_t{16384},
        std::numeric_limits<std::uint64_t>::max()}) {
    Writer w;
    w.u64(v);
    Reader r(w.out());
    EXPECT_EQ(r.u64(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, U32RoundTrip) {
  for (std::uint32_t v : {0u, 1u, 255u, 65536u, 4294967295u}) {
    Writer w;
    w.u32(v);
    Reader r(w.out());
    EXPECT_EQ(r.u32(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, U32RejectsOversizedVarint) {
  Writer w;
  w.u64(1ULL << 40);
  Reader r(w.out());
  r.u32();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, MixedRoundTrip) {
  Writer w;
  w.u8(7);
  w.u64(1234567);
  w.str("hello");
  w.bytes(Bytes{1, 2, 3});
  Reader r(w.out());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u64(), 1234567u);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(Codec, EmptyStringAndBytes) {
  Writer w;
  w.str("");
  w.bytes({});
  Reader r(w.out());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Codec, ReadPastEndFails) {
  Reader r(ByteView{});
  r.u8();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, TruncatedVarintFails) {
  const Bytes data{0x80, 0x80};  // continuation bits with no terminator
  Reader r(data);
  r.u64();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, OverlongVarintFails) {
  const Bytes data{0xff, 0xff, 0xff, 0xff, 0xff,
                   0xff, 0xff, 0xff, 0xff, 0xff, 0x01};  // 71 bits
  Reader r(data);
  r.u64();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, BytesLengthBeyondInputFails) {
  Writer w;
  w.u64(1000);  // claimed length
  Reader r(w.out());
  r.bytes();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, SeqCountGuard) {
  // A sequence claiming more elements than remaining bytes must fail
  // instead of causing a huge allocation.
  Writer w;
  w.u64(1ULL << 32);
  Reader r(w.out());
  r.seq();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, PoisoningIsSticky) {
  const Bytes data{0x01};
  Reader r(data);
  EXPECT_EQ(r.u8(), 1);
  r.u8();  // past end -> poison
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // still poisoned, returns zero
  EXPECT_FALSE(r.done());
}

TEST(Codec, DoneRequiresFullConsumption) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.out());
  r.u8();
  EXPECT_FALSE(r.done());
  r.u8();
  EXPECT_TRUE(r.done());
}

TEST(Codec, EncodeDecodeU64Helpers) {
  EXPECT_EQ(decode_u64(encode_u64(0)), 0u);
  EXPECT_EQ(decode_u64(encode_u64(987654321)), 987654321u);
  // Trailing garbage is rejected.
  Bytes enc = encode_u64(5);
  enc.push_back(0);
  EXPECT_EQ(decode_u64(enc), std::nullopt);
  EXPECT_EQ(decode_u64(Bytes{}), std::nullopt);
}

TEST(Codec, DeterministicEncoding) {
  Writer a;
  a.u64(42);
  a.str("x");
  Writer b;
  b.u64(42);
  b.str("x");
  EXPECT_EQ(a.out(), b.out());
}

}  // namespace
}  // namespace dr
