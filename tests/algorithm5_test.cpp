#include "ba/algorithm5.h"

#include "ba/valid_message.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::expect_agreement;
using test::silent;

TEST(Alg5Schedule, BlockStartsAreContiguous) {
  // t = 1, top = 3: blocks 3, 2, 1 then block 0.
  const Alg5Schedule s{1, 3};
  EXPECT_EQ(s.first_block_step(), 8u);  // 3t+5
  EXPECT_EQ(s.block_start(3), 8u);
  // block 3: 2*7+3 = 17 steps.
  EXPECT_EQ(s.block_start(2), 25u);
  // block 2: 2*3+3 = 9.
  EXPECT_EQ(s.block_start(1), 34u);
  // block 1: 2*1+3 = 5.
  EXPECT_EQ(s.block_start(0), 39u);
  EXPECT_EQ(s.steps(), 40u);
  EXPECT_EQ(s.exchange_start(3), 8u + 14u);
  EXPECT_EQ(s.exchange_start(1), 34u + 2u);
}

TEST(Alg5Schedule, NoPassives) {
  const Alg5Schedule s{2, 0};
  EXPECT_EQ(s.block_start(0), 11u);  // 3t+5
  EXPECT_EQ(s.steps(), 12u);
}

TEST(EncodeAlg5, RoundTrip) {
  crypto::KeyRegistry registry(4, 1);
  crypto::Signer signer(&registry, {0});
  const SignedValue sv = make_signed(1, signer, 0);
  const Attested a = attest(to_bytes("proof"), signer, 0);
  const auto decoded = decode_alg5(encode_alg5(sv, {a, a}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, sv);
  ASSERT_EQ(decoded->second.size(), 2u);
  EXPECT_EQ(decoded->second[0], a);
  EXPECT_EQ(decode_alg5(to_bytes("garbage")), std::nullopt);
}

class Algorithm5Sweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, Value>> {};

TEST_P(Algorithm5Sweep, FailureFree) {
  const auto& [n, t, s, value] = GetParam();
  expect_agreement(make_alg5_protocol(s), BAConfig{n, t, 0, value}, 1);
}

TEST_P(Algorithm5Sweep, SilentPassiveFaults) {
  const auto& [n, t, s, value] = GetParam();
  const std::size_t alpha = alpha_for(t);
  if (n <= alpha + 2) GTEST_SKIP() << "not enough passives";
  std::vector<ScenarioFault> faults;
  // Spread silent faults over the first passive tree's root and low nodes.
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(alpha + 2 * i)));
  }
  expect_agreement(make_alg5_protocol(s), BAConfig{n, t, 0, value}, 1,
                   faults);
}

TEST_P(Algorithm5Sweep, SilentActiveFaults) {
  const auto& [n, t, s, value] = GetParam();
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(1 + i)));  // Alg2 members
  }
  expect_agreement(make_alg5_protocol(s), BAConfig{n, t, 0, value}, 1,
                   faults);
}

TEST_P(Algorithm5Sweep, MixedChaosFaults) {
  const auto& [n, t, s, value] = GetParam();
  const std::size_t alpha = alpha_for(t);
  std::vector<ScenarioFault> faults;
  faults.push_back(chaos(2, 101, 0.2));
  if (t >= 2 && n > alpha + 1) {
    faults.push_back(chaos(static_cast<ProcId>(alpha), 202, 0.2));
  }
  expect_agreement(make_alg5_protocol(s), BAConfig{n, t, 0, value}, 1,
                   faults);
}

std::string sweep_name(
    const ::testing::TestParamInfo<Algorithm5Sweep::ParamType>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param)) + "_v" +
         std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Algorithm5Sweep,
    ::testing::Values(
        // n < alpha: the Algorithm2Ext fallback.
        std::tuple{5u, 2u, 3u, Value{1}}, std::tuple{12u, 2u, 3u, Value{0}},
        // n == alpha: no passives at all.
        std::tuple{9u, 1u, 1u, Value{1}},
        // Single full tree plus remainder.
        std::tuple{20u, 1u, 3u, Value{1}}, std::tuple{20u, 1u, 3u, Value{0}},
        // Several trees, several depths.
        std::tuple{40u, 1u, 7u, Value{1}}, std::tuple{40u, 2u, 3u, Value{1}},
        std::tuple{60u, 2u, 7u, Value{0}}, std::tuple{80u, 3u, 7u, Value{1}},
        std::tuple{64u, 4u, 3u, Value{1}}),
    sweep_name);

TEST(Algorithm5, SilentTreeRootForcesSubtreeActivations) {
  // One tree of depth 3 with a silent root: its subtrees must be activated
  // via proofs of work and everyone still agrees.
  const std::size_t t = 1;
  const std::size_t n = 9 + 7;  // alpha = 9, one full tree
  const ProcId tree_root = 9;
  const auto result = expect_agreement(make_alg5_protocol(7),
                                       BAConfig{n, t, 0, 1}, 1,
                                       {silent(tree_root)});
  (void)result;
}

TEST(Algorithm5, SilentMidLevelNodeIsBypassed) {
  const std::size_t t = 1;
  const std::size_t n = 9 + 7;
  const ProcId mid = 10;  // node 2, roots the left depth-2 subtree
  expect_agreement(make_alg5_protocol(7), BAConfig{n, t, 0, 1}, 1,
                   {silent(mid)});
}

TEST(Algorithm5, MessageCountScalesGentlyWithN) {
  // The whole point of Algorithm 5: for fixed t the message count grows
  // linearly in n, unlike Dolev-Strong's n*t with big constants. Check the
  // per-processor average stays bounded as n doubles.
  const std::size_t t = 2;
  const std::size_t s = 3;
  std::vector<double> per_node;
  for (std::size_t n : {32u, 64u, 128u}) {
    const auto result =
        expect_agreement(make_alg5_protocol(s), BAConfig{n, t, 0, 1}, 1);
    per_node.push_back(
        static_cast<double>(result.metrics.messages_by_correct()) /
        static_cast<double>(n));
  }
  // Linear growth => roughly constant per-node cost; allow generous slack.
  EXPECT_LT(per_node[2], per_node[0] * 2.0);
}

TEST(Algorithm5, ActivationCountRespectsLemma4) {
  // Lemma 4: in a tree with b(C) faulty processors, at most 2 b(C) + 1
  // processors are activated or faulty. Count activated passives with one
  // silent faulty node per tree.
  const std::size_t t = 2;
  const std::size_t n = 16 + 2 * 7;  // alpha = 16, two depth-3 trees
  const BAConfig config{n, t, 0, 1};
  const Forest forest = Forest::build(n, t, 7);
  ASSERT_EQ(forest.trees.size(), 2u);

  sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                    .value = 1, .seed = 1});
  // One silent fault in each tree: the roots themselves.
  const ProcId f1 = forest.trees[0].first_id;
  const ProcId f2 = forest.trees[1].first_id;
  runner.mark_faulty(f1);
  runner.mark_faulty(f2);
  std::vector<Algorithm5Passive*> passives(n, nullptr);
  for (ProcId p = 0; p < n; ++p) {
    if (runner.is_faulty(p)) {
      runner.install(p, std::make_unique<adversary::SilentProcess>());
    } else if (forest.is_active(p)) {
      runner.install(p, std::make_unique<Algorithm5Active>(p, config,
                                                           forest));
    } else {
      auto proc = std::make_unique<Algorithm5Passive>(p, config, forest);
      passives[p] = proc.get();
      runner.install(p, std::move(proc));
    }
  }
  const auto result =
      runner.run(Alg5Schedule{t, forest.max_depth()}.steps());
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 1).agreement);

  for (const PassiveTree& tree : forest.trees) {
    std::size_t activated_or_faulty = 0;
    std::size_t faulty_in_tree = 0;
    for (std::size_t node = 1; node <= tree.size(); ++node) {
      const ProcId id = tree.id_of(node);
      if (result.faulty[id]) {
        ++activated_or_faulty;
        ++faulty_in_tree;
      } else if (passives[id] != nullptr && passives[id]->activated()) {
        ++activated_or_faulty;
      }
    }
    EXPECT_LE(activated_or_faulty, 2 * faulty_in_tree + 1)
        << "tree at " << tree.first_id;
  }
}

TEST(Algorithm5, FallbackMatchesPaperForSmallN) {
  // n < alpha: Algorithm2Ext runs; message count is Alg2's plus
  // (t+1)(n-2t-1).
  const std::size_t t = 2;  // alpha = 16
  const std::size_t n = 12;
  const auto result =
      expect_agreement(make_alg5_protocol(3), BAConfig{n, t, 0, 1}, 1);
  EXPECT_LE(result.metrics.messages_by_correct(),
            bounds::alg2_message_upper_bound(t) + (t + 1) * (n - 2 * t - 1));
}

TEST(Algorithm5, FaultsInLeftoverTreesAreHandled) {
  // n = 9 + 12 passives with s = 7: forest is one depth-3 tree (7) plus a
  // depth-2 tree (3) plus two singletons. Put the faults in the leftover
  // trees specifically.
  const std::size_t t = 1;
  const std::size_t n = 21;
  const Forest forest = Forest::build(n, t, 7);
  ASSERT_GE(forest.trees.size(), 3u);
  const ProcId leftover_root = forest.trees[1].first_id;
  expect_agreement(make_alg5_protocol(7), BAConfig{n, t, 0, 1}, 1,
                   {silent(leftover_root)});
  const ProcId singleton = forest.trees[2].first_id;
  expect_agreement(make_alg5_protocol(7), BAConfig{n, t, 0, 0}, 2,
                   {silent(singleton)});
}

TEST(Algorithm5, RowIsolatingActiveFaultsStillAgree) {
  // Pack all t faults into one row of the active grid (alpha = 16, m = 4):
  // the worst placement for the Algorithm-4 exchanges inside Algorithm 5.
  const std::size_t t = 2;
  const std::size_t n = 40;
  std::vector<ScenarioFault> faults;
  faults.push_back(silent(12));  // row 3 of the 4x4 grid
  faults.push_back(silent(13));
  expect_agreement(make_alg5_protocol(3), BAConfig{n, t, 0, 1}, 1, faults);
}

TEST(Algorithm5, DeepTreeWithChainedFaults) {
  // One deep tree (s = 15, depth 4) with faults on a root-to-leaf path:
  // every block in between must recover via proofs of work.
  const std::size_t t = 2;
  const std::size_t n = 16 + 15;
  const Forest forest = Forest::build(n, t, 15);
  ASSERT_EQ(forest.trees.size(), 1u);
  const PassiveTree& tree = forest.trees[0];
  std::vector<ScenarioFault> faults;
  faults.push_back(silent(tree.id_of(1)));  // root
  faults.push_back(silent(tree.id_of(2)));  // its left child
  expect_agreement(make_alg5_protocol(15), BAConfig{n, t, 0, 1}, 1, faults);
}

TEST(Algorithm5, ProofOfWorkGateBoundsSpamDamage) {
  // Without the Lemma-4 gate, a spamming faulty active triggers every
  // subtree chain; with it, the spam is rejected. Both stay correct — the
  // gate protects the message bound, not safety.
  const std::size_t n = 100;
  const std::size_t t = 2;
  const std::size_t s = 3;
  const Forest forest = Forest::build(n, t, s);
  const Alg5Schedule schedule{t, forest.max_depth()};

  struct Spammer final : sim::Process {
    Spammer(const Forest& f, const Alg5Schedule& sch)
        : forest(f), sched(sch) {}
    void on_phase(sim::Context& ctx) override {
      if (!valid.has_value()) {
        for (const sim::Envelope& env : ctx.inbox()) {
          const auto msg = decode_alg5(env.payload);
          if (msg && is_valid_message(msg->first, ctx.verifier(),
                                      forest.alpha, 0)) {
            valid = msg->first;
            break;
          }
        }
      }
      if (!valid.has_value()) return;
      for (std::size_t x = sched.top; x >= 1; --x) {
        if (ctx.phase() != sched.block_start(x)) continue;
        for (const PassiveTree& tree : forest.trees) {
          for (std::size_t node : tree.subtree_roots_at_depth(x)) {
            ctx.send(tree.id_of(node), encode_alg5(*valid, {}), 0);
          }
        }
      }
    }
    std::optional<Value> decision() const override { return std::nullopt; }
    const Forest& forest;
    const Alg5Schedule& sched;
    std::optional<SignedValue> valid;
  };

  std::vector<ScenarioFault> faults;
  faults.push_back(ScenarioFault{
      static_cast<ProcId>(forest.alpha - 1),
      [&forest, &schedule](ProcId, const BAConfig&) {
        return std::make_unique<Spammer>(forest, schedule);
      }});
  const auto gated = expect_agreement(make_alg5_protocol(s),
                                      BAConfig{n, t, 0, 1}, 1, faults);
  const auto ungated = expect_agreement(make_alg5_ungated_protocol(s),
                                        BAConfig{n, t, 0, 1}, 1, faults);
  EXPECT_GT(ungated.metrics.messages_by_correct(),
            gated.metrics.messages_by_correct() * 3 / 2);
}

TEST(Algorithm5, Supports) {
  EXPECT_TRUE(algorithm5_supports(BAConfig{100, 2, 0, 1}, 3));
  EXPECT_TRUE(algorithm5_supports(BAConfig{5, 2, 0, 1}, 3));
  EXPECT_FALSE(algorithm5_supports(BAConfig{4, 2, 0, 1}, 3));  // n < 2t+1
  EXPECT_FALSE(algorithm5_supports(BAConfig{100, 0, 0, 1}, 3));
  EXPECT_FALSE(algorithm5_supports(BAConfig{100, 2, 0, 7}, 3));
  EXPECT_FALSE(algorithm5_supports(BAConfig{100, 2, 1, 1}, 3));
  EXPECT_FALSE(algorithm5_supports(BAConfig{100, 2, 0, 1}, 0));
}

}  // namespace
}  // namespace dr::ba
