#include "bounds/theorem2.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr::bounds {
namespace {

TEST(Formulas, Theorem2LowerBound) {
  // max{(n-1)/2, (1+t/2)^2}
  EXPECT_DOUBLE_EQ(theorem2_message_lower_bound(101, 2), 50.0);
  EXPECT_DOUBLE_EQ(theorem2_message_lower_bound(5, 4), 9.0);
  EXPECT_DOUBLE_EQ(theorem2_message_lower_bound(9, 4), 9.0);
  EXPECT_EQ(theorem2_per_faulty_lower_bound(1), 2u);
  EXPECT_EQ(theorem2_per_faulty_lower_bound(2), 2u);
  EXPECT_EQ(theorem2_per_faulty_lower_bound(3), 3u);
  EXPECT_EQ(theorem2_per_faulty_lower_bound(4), 3u);
  EXPECT_EQ(theorem2_per_faulty_lower_bound(8), 5u);
}

struct ProbeCase {
  std::string protocol;
  std::size_t n;
  std::size_t t;
  std::size_t s;  // 0 = fixed protocol by name
};

class Theorem2Probes : public ::testing::TestWithParam<ProbeCase> {
 protected:
  ba::Protocol resolve() const {
    const ProbeCase& c = GetParam();
    if (c.protocol == "alg3") return ba::make_alg3_protocol(c.s);
    if (c.protocol == "alg5") return ba::make_alg5_protocol(c.s);
    return *ba::find_protocol(c.protocol);
  }
};

TEST_P(Theorem2Probes, IgnoringCoalitionStillReceivesEnoughMessages) {
  const ProbeCase& c = GetParam();
  const ba::Protocol protocol = resolve();
  const ba::BAConfig config{c.n, c.t, 0, 1};
  ASSERT_TRUE(protocol.supports(config));
  const auto probe = run_theorem2_probe(protocol, config, 1);
  EXPECT_TRUE(probe.agreement) << protocol.name;
  EXPECT_TRUE(probe.validity) << protocol.name;
  // The proof's conclusion: every member of B must be sent at least
  // ceil(1+t/2) messages by correct processors.
  EXPECT_GE(probe.min_received_by_b, probe.per_member_bound)
      << protocol.name << " n=" << c.n << " t=" << c.t;
}

TEST_P(Theorem2Probes, TotalMessagesRespectTheLowerBound) {
  const ProbeCase& c = GetParam();
  const ba::Protocol protocol = resolve();
  const ba::BAConfig config{c.n, c.t, 0, 1};
  const auto probe = run_theorem2_probe(protocol, config, 1);
  EXPECT_GE(static_cast<double>(probe.messages_sent_by_correct),
            theorem2_message_lower_bound(c.n, c.t))
      << protocol.name;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Theorem2Probes,
    ::testing::Values(ProbeCase{"dolev-strong", 9, 2, 0},
                      ProbeCase{"dolev-strong", 13, 4, 0},
                      ProbeCase{"dolev-strong-relay", 13, 3, 0},
                      ProbeCase{"alg1", 5, 2, 0}, ProbeCase{"alg1", 9, 4, 0},
                      ProbeCase{"alg1", 13, 6, 0},
                      ProbeCase{"alg2", 9, 4, 0},
                      ProbeCase{"alg3", 20, 2, 3},
                      ProbeCase{"alg3", 40, 3, 4},
                      ProbeCase{"phase-king", 13, 3, 0},
                      ProbeCase{"eig", 7, 2, 0},
                      ProbeCase{"eig", 10, 3, 0}),
    [](const auto& param_info) {
      const ProbeCase& c = param_info.param;
      std::string tag = c.protocol + "_n" + std::to_string(c.n) + "_t" +
                        std::to_string(c.t);
      for (char& ch : tag) {
        if (ch == '-') ch = '_';
      }
      return tag;
    });

TEST(Theorem2Attack, OneShotProtocolWorksFailureFree) {
  const auto protocol = make_one_shot_protocol();
  for (ba::Value v : {ba::Value{0}, ba::Value{1}, ba::Value{9}}) {
    const auto result =
        ba::run_scenario(protocol, ba::BAConfig{7, 1, 0, v}, 1);
    const auto check = sim::check_byzantine_agreement(result, 0, v);
    EXPECT_TRUE(check.agreement);
    EXPECT_TRUE(check.validity);
  }
  // And it is thrifty: n-1 messages, below the Theorem 2 bound whenever
  // (1+t/2)^2 > n-1.
  const auto result =
      ba::run_scenario(protocol, ba::BAConfig{7, 4, 0, 1}, 1);
  EXPECT_EQ(result.metrics.messages_by_correct(), 6u);
  EXPECT_LT(static_cast<double>(result.metrics.messages_by_correct()),
            theorem2_message_lower_bound(7, 4));
}

TEST(Theorem2Attack, MessageStarvingBreaksTheThriftyProtocol) {
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{5, 1},
                             {9, 2},
                             {13, 4}}) {
    const auto attack = run_theorem2_attack(n, t, 1);
    EXPECT_TRUE(attack.agreement_violated) << "n=" << n;
    ASSERT_TRUE(attack.starved_decision.has_value());
    ASSERT_TRUE(attack.others_decision.has_value());
    EXPECT_EQ(*attack.starved_decision, ba::kDefaultValue);
    EXPECT_EQ(*attack.others_decision, 1u);
  }
}

TEST(Theorem2Attack, RealAlgorithmsSurviveTheSameWithholding) {
  // Control: a withholding transmitter is a legal (faulty) behaviour every
  // correct algorithm must survive — the starved processor learns the value
  // from relays, which is where Theorem 2's extra messages go.
  for (const char* name : {"dolev-strong", "phase-king"}) {
    const ba::Protocol& protocol = *ba::find_protocol(name);
    const std::size_t n = 9;
    const std::size_t t = 2;
    std::set<ba::ProcId> ones;
    for (ba::ProcId q = 1; q + 1 < n; ++q) ones.insert(q);  // skip victim
    const auto result = ba::run_scenario(
        protocol, ba::BAConfig{n, t, 0, 0}, 1,
        {test::equivocator(ones)});
    EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement)
        << name;
  }
}

TEST(Theorem2, FirstTermDominatesForLargeN) {
  // For n >> t^2 the (n-1)/2 term governs; check our algorithms' failure-
  // free runs sit above it (they must: every non-transmitter processor has
  // to receive something when the value is 1).
  const std::size_t n = 101;
  const std::size_t t = 2;
  for (const auto& protocol :
       {ba::make_alg3_protocol(4), ba::make_alg5_protocol(3)}) {
    const auto result = test::expect_agreement(protocol,
                                               ba::BAConfig{n, t, 0, 1}, 1);
    EXPECT_GE(static_cast<double>(result.metrics.messages_by_correct()),
              theorem2_message_lower_bound(n, t))
        << protocol.name;
  }
}

}  // namespace
}  // namespace dr::bounds
