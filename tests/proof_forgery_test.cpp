// Adversarial battery for proof::Transferable offline verification: every
// honest-run proof must verify with zero protocol context, and every
// tampering — forged signature bytes, spliced chains, reattributed
// signers, truncation below threshold, cross-realm replay, arbitrary bit
// flips — must be rejected. The verdicts are asserted exactly, so a
// structural rejection can never silently degrade into (or mask) a
// cryptographic one.
#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "ba/registry.h"
#include "ba/tree.h"
#include "proof/transferable.h"
#include "test_util.h"

namespace dr::proof {
namespace {

using ba::BAConfig;
using ba::Protocol;

Realm make_realm(const BAConfig& config, std::uint64_t seed) {
  return Realm{.scheme = sim::SchemeKind::kHmac,
               .n = config.n,
               .t = config.t,
               .transmitter = config.transmitter,
               .seed = seed,
               .merkle_height = 6};
}

ByteView view(const Bytes& b) { return ByteView{b.data(), b.size()}; }

/// Runs `protocol` failure-free in the simulator and wraps every
/// processor's evidence into a Transferable. Fails the test if any correct
/// processor emitted no evidence — the decision-time hook must fire for
/// every relaying protocol.
std::vector<Transferable> honest_proofs(const Protocol& protocol,
                                        const BAConfig& config,
                                        std::uint64_t seed) {
  const sim::RunResult result = ba::run_scenario(protocol, config, seed);
  EXPECT_EQ(result.evidence.size(), config.n) << protocol.name;
  std::vector<Transferable> proofs;
  const Realm realm = make_realm(config, seed);
  for (ProcId p = 0; p < result.evidence.size(); ++p) {
    EXPECT_FALSE(result.evidence[p].empty())
        << protocol.name << ": processor " << p << " emitted no evidence";
    if (result.evidence[p].empty()) continue;
    const auto proof = from_evidence(realm, p, view(result.evidence[p]));
    EXPECT_TRUE(proof.has_value()) << protocol.name << ": p=" << p;
    if (proof.has_value()) proofs.push_back(*proof);
  }
  return proofs;
}

/// Offline verdict with the verifier rebuilt from the proof's own realm.
Verdict offline(const Transferable& p) {
  const OfflineVerifier verifier(p.realm);
  return verify_offline(p, verifier);
}

// --- Positive control: one honest run per protocol family, every --------
// --- evidence kind, every proof accepted offline. ------------------------

TEST(ProofPositive, DolevStrongExtractionProofsVerify) {
  const auto proofs =
      honest_proofs(*ba::find_protocol("dolev-strong"), {5, 2, 0, 1}, 7);
  ASSERT_EQ(proofs.size(), 5u);
  for (const Transferable& p : proofs) {
    EXPECT_EQ(p.evidence.kind, ba::EvidenceKind::kExtraction);
    EXPECT_EQ(p.value(), Value{1});
    EXPECT_EQ(offline(p), Verdict::kOk);
  }
}

TEST(ProofPositive, DolevStrongRelayProofsVerify) {
  const auto proofs = honest_proofs(
      *ba::find_protocol("dolev-strong-relay"), {5, 2, 0, 1}, 7);
  ASSERT_EQ(proofs.size(), 5u);
  for (const Transferable& p : proofs) {
    EXPECT_EQ(p.evidence.kind, ba::EvidenceKind::kExtraction);
    EXPECT_EQ(offline(p), Verdict::kOk);
  }
}

TEST(ProofPositive, Algorithm2PossessionProofsVerify) {
  const auto proofs =
      honest_proofs(*ba::find_protocol("alg2"), {5, 2, 0, 1}, 11);
  ASSERT_EQ(proofs.size(), 5u);
  for (const Transferable& p : proofs) {
    EXPECT_EQ(p.evidence.kind, ba::EvidenceKind::kPossession);
    EXPECT_EQ(offline(p), Verdict::kOk);
  }
}

TEST(ProofPositive, Algorithm5ValidMessageProofsVerify) {
  // n >= alpha_for(t): the full active/passive layout. Actives prove the
  // valid message they relayed; passives the one they decided on.
  const std::size_t n = 20, t = 1;
  ASSERT_GE(n, ba::alpha_for(t));
  const auto proofs =
      honest_proofs(ba::make_alg5_protocol(3), {n, t, 0, 1}, 13);
  ASSERT_EQ(proofs.size(), n);
  std::size_t valid_message = 0;
  for (const Transferable& p : proofs) {
    if (p.evidence.kind == ba::EvidenceKind::kValidMessage) ++valid_message;
    EXPECT_EQ(offline(p), Verdict::kOk);
  }
  EXPECT_GT(valid_message, 0u);
}

TEST(ProofPositive, Algorithm5FallbackProofsVerify) {
  // n < alpha_for(t): make_algorithm5 degrades to the Algorithm2Ext
  // fallback; evidence must still flow through and verify.
  const std::size_t n = 5, t = 2;
  ASSERT_LT(n, ba::alpha_for(t));
  const auto proofs =
      honest_proofs(ba::make_alg5_protocol(3), {n, t, 0, 1}, 17);
  ASSERT_EQ(proofs.size(), n);
  for (const Transferable& p : proofs) {
    EXPECT_EQ(offline(p), Verdict::kOk);
  }
}

TEST(ProofPositive, RoundTripPreservesBytesAndDigest) {
  const auto proofs =
      honest_proofs(*ba::find_protocol("alg2"), {5, 2, 0, 1}, 11);
  for (const Transferable& p : proofs) {
    const Bytes encoded = encode_transferable(p);
    const auto decoded = decode_transferable(view(encoded));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
    EXPECT_EQ(encode_transferable(*decoded), encoded);
    EXPECT_EQ(digest(*decoded), digest(p));
  }
}

// --- Forgeries. ----------------------------------------------------------

class ProofForgery : public ::testing::Test {
 protected:
  void SetUp() override {
    possession_ =
        honest_proofs(*ba::find_protocol("alg2"), {5, 2, 0, 1}, 11);
    extraction_ =
        honest_proofs(*ba::find_protocol("dolev-strong"), {5, 2, 0, 1}, 7);
    ASSERT_EQ(possession_.size(), 5u);
    ASSERT_EQ(extraction_.size(), 5u);
  }

  std::vector<Transferable> possession_;
  std::vector<Transferable> extraction_;
};

TEST_F(ProofForgery, ForgedSignatureBytesRejected) {
  for (const Transferable& honest : {possession_[1], extraction_[2]}) {
    Transferable forged = honest;
    ASSERT_FALSE(forged.evidence.sv.chain.empty());
    ASSERT_FALSE(forged.evidence.sv.chain.back().sig.empty());
    forged.evidence.sv.chain.back().sig.back() ^= 0x01;
    EXPECT_EQ(offline(forged), Verdict::kBadSignature);
  }
}

TEST_F(ProofForgery, ClaimedValueSwapRejected) {
  // The chain signs the value: swapping the value under an honest chain
  // breaks every MAC.
  Transferable forged = possession_[1];
  forged.evidence.sv.value ^= 1;
  EXPECT_EQ(offline(forged), Verdict::kBadSignature);
}

TEST_F(ProofForgery, SplicedChainsRejected) {
  // Graft the tail of one honest chain onto the head of another (two
  // different runs of the same realm shape, different seeds => different
  // keys; and within one run, different holders => different prefixes).
  const auto other =
      honest_proofs(*ba::find_protocol("dolev-strong"), {5, 2, 0, 1}, 8);
  ASSERT_EQ(other.size(), 5u);
  Transferable spliced = extraction_[3];
  ASSERT_FALSE(spliced.evidence.sv.chain.empty());
  ASSERT_FALSE(other[3].evidence.sv.chain.empty());
  spliced.evidence.sv.chain.back() = other[3].evidence.sv.chain.back();
  EXPECT_EQ(offline(spliced), Verdict::kBadSignature);

  // Cross-holder splice within the run: holder 4 presenting holder 3's
  // terminal signature as its own chain. The chain no longer ends with the
  // claimed holder — caught structurally before any MAC runs.
  Transferable cross = extraction_[4];
  const auto& donor = extraction_[3].evidence.sv.chain;
  ASSERT_FALSE(donor.empty());
  ASSERT_FALSE(cross.evidence.sv.chain.empty());
  ASSERT_NE(donor.back().signer, cross.holder);
  cross.evidence.sv.chain.back() = donor.back();
  EXPECT_EQ(offline(cross), Verdict::kMalformedChain);
}

TEST_F(ProofForgery, ReattributedSignerRejected) {
  // Keep the signature bytes, claim a different author: each MAC is keyed
  // by its signer, so the link fails verification. Reattribute one
  // non-holder link of a possession chain to an id that is neither the
  // holder nor another signer — the others-count and distinctness are
  // unchanged, so the rejection must come from the crypto, not the
  // structure.
  Transferable forged = possession_[2];
  std::vector<ProcId> taken = ba::chain_signers(forged.evidence.sv);
  taken.push_back(forged.holder);
  ProcId unused = 0;
  while (std::find(taken.begin(), taken.end(), unused) != taken.end()) {
    ++unused;
  }
  ASSERT_LT(unused, forged.realm.n);
  bool reattributed = false;
  for (crypto::Signature& link : forged.evidence.sv.chain) {
    if (link.signer != forged.holder) {
      link.signer = unused;
      reattributed = true;
      break;
    }
  }
  ASSERT_TRUE(reattributed);
  EXPECT_EQ(offline(forged), Verdict::kBadSignature);
}

TEST_F(ProofForgery, ReattributionToHolderFallsBelowThreshold) {
  // Reattributing every non-holder signature to the holder never reaches
  // the crypto: Theorem 4 counts processors *other* than the holder.
  Transferable forged = possession_[1];
  for (crypto::Signature& link : forged.evidence.sv.chain) {
    link.signer = forged.holder;
  }
  EXPECT_EQ(offline(forged), Verdict::kBelowThreshold);
}

TEST_F(ProofForgery, TruncatedExtractionChainRejected) {
  // Dropping the terminal signature leaves a chain that no longer ends
  // with the holder — structurally malformed before any MAC is checked.
  Transferable forged = extraction_[2];
  ASSERT_GE(forged.evidence.sv.chain.size(), 2u);
  forged.evidence.sv.chain.pop_back();
  EXPECT_EQ(offline(forged), Verdict::kMalformedChain);
}

TEST_F(ProofForgery, BelowThresholdPossessionRejected) {
  // Strip non-holder signatures until fewer than t remain.
  Transferable forged = possession_[1];
  std::vector<crypto::Signature> kept;
  std::size_t others = 0;
  for (const crypto::Signature& link : forged.evidence.sv.chain) {
    if (link.signer != forged.holder) {
      if (others + 1 >= forged.realm.t) continue;  // cap at t-1 others
      ++others;
    }
    kept.push_back(link);
  }
  forged.evidence.sv.chain = std::move(kept);
  EXPECT_EQ(offline(forged), Verdict::kBelowThreshold);
}

TEST_F(ProofForgery, EmptyExtractionChainRejected) {
  Transferable forged = extraction_[0];
  forged.evidence.sv.chain.clear();
  EXPECT_EQ(offline(forged), Verdict::kMalformedChain);
}

TEST_F(ProofForgery, OutOfRangeIdsRejected) {
  Transferable holder_oor = possession_[1];
  holder_oor.holder = static_cast<ProcId>(holder_oor.realm.n);
  EXPECT_EQ(offline(holder_oor), Verdict::kMalformedChain);

  Transferable signer_oor = possession_[1];
  ASSERT_FALSE(signer_oor.evidence.sv.chain.empty());
  signer_oor.evidence.sv.chain.front().signer =
      static_cast<ProcId>(signer_oor.realm.n + 3);
  EXPECT_EQ(offline(signer_oor), Verdict::kMalformedChain);
}

TEST_F(ProofForgery, CrossRealmReplayRejected) {
  // The same honest bytes presented to a verifier expecting a different
  // realm: rejected on realm comparison alone.
  const Transferable& honest = possession_[1];
  Realm expected = honest.realm;
  expected.seed ^= 1;
  const OfflineVerifier verifier(expected);
  EXPECT_EQ(verify(honest, expected, verifier.verifier()),
            Verdict::kWrongRealm);

  // Re-embedding the foreign realm inside the proof instead: the realm
  // comparison passes, but the rebuilt keys are the wrong ones and every
  // MAC fails. Replay across realms loses either way.
  Transferable reseeded = honest;
  reseeded.realm.seed ^= 1;
  EXPECT_EQ(offline(reseeded), Verdict::kBadSignature);

  Transferable retransmitted = extraction_[2];
  retransmitted.realm.transmitter = 1;
  EXPECT_EQ(offline(retransmitted), Verdict::kMalformedChain);
}

TEST_F(ProofForgery, WarmCacheDoesNotLaunderForgeries) {
  // Verify the honest proof through a cache, then present a forgery whose
  // links overlap the cached prefix: the cache answers only exact
  // (signer, prefix, signature-bytes) triples, so the forged link misses
  // and full verification rejects it.
  const Transferable& honest = possession_[1];
  const OfflineVerifier verifier(honest.realm);
  crypto::VerifyCache cache;
  ASSERT_EQ(verify_offline(honest, verifier, &cache), Verdict::kOk);
  const std::size_t warm_hits = cache.hits();
  ASSERT_EQ(verify_offline(honest, verifier, &cache), Verdict::kOk);
  EXPECT_GT(cache.hits(), warm_hits) << "second pass should run warm";

  Transferable forged = honest;
  forged.evidence.sv.chain.back().sig.front() ^= 0x80;
  EXPECT_EQ(verify_offline(forged, verifier, &cache),
            Verdict::kBadSignature);
  // And the failed verification must not have poisoned the cache.
  EXPECT_EQ(verify_offline(honest, verifier, &cache), Verdict::kOk);
}

TEST_F(ProofForgery, BitFlipFuzz) {
  // Flip every bit of the canonical encoding, one at a time. Each mutant
  // must either fail to decode or fail verification — except mutants that
  // only touch unauthenticated envelope fields (holder, realm.n), which
  // may legitimately verify; those must still carry the identical value,
  // kind and signature chain, i.e. a bit flip can never alter what is
  // being proven.
  for (const Transferable& honest : {possession_[1], extraction_[2]}) {
    const Bytes encoded = encode_transferable(honest);
    std::size_t accepted = 0;
    for (std::size_t bit = 0; bit < encoded.size() * 8; ++bit) {
      Bytes mutated = encoded;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      const auto decoded = decode_transferable(view(mutated));
      if (!decoded.has_value()) continue;
      if (offline(*decoded) != Verdict::kOk) continue;
      ++accepted;
      EXPECT_EQ(decoded->value(), honest.value()) << "bit " << bit;
      EXPECT_EQ(decoded->evidence.kind, honest.evidence.kind)
          << "bit " << bit;
      EXPECT_EQ(decoded->evidence.sv.chain, honest.evidence.sv.chain)
          << "bit " << bit;
    }
    // Accepted mutants can only differ in the unauthenticated envelope
    // fields (holder, realm.n/t, merkle_height — about four varint bytes);
    // every flip touching the value, the kind or a signature must reject.
    EXPECT_LE(accepted, 4u * 8u);
  }
}

TEST_F(ProofForgery, VersionByteGated) {
  Bytes encoded = encode_transferable(possession_[0]);
  ASSERT_EQ(encoded[0], kProofVersion);
  encoded[0] = kProofVersion + 1;
  EXPECT_FALSE(decode_transferable(view(encoded)).has_value());
}

}  // namespace
}  // namespace dr::proof
