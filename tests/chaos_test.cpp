#include "sim/chaos.h"

#include <gtest/gtest.h>

#include "ba/replay.h"
#include "bounds/formulas.h"

namespace dr::chaos {
namespace {

TEST(ChaosResolve, RegistryAndParameterisedNames) {
  ASSERT_TRUE(resolve_protocol("dolev-strong").has_value());
  ASSERT_TRUE(resolve_protocol("alg2").has_value());

  const auto alg3 = resolve_protocol("alg3[s=4]");
  ASSERT_TRUE(alg3.has_value());
  EXPECT_EQ(alg3->name, "alg3[s=4]");

  const auto alg5 = resolve_protocol("alg5[s=3]");
  ASSERT_TRUE(alg5.has_value());

  EXPECT_FALSE(resolve_protocol("alg3").has_value());  // needs [s=K]
  EXPECT_FALSE(resolve_protocol("alg3[s=0]").has_value());
  EXPECT_FALSE(resolve_protocol("not-a-protocol").has_value());
}

TEST(ChaosBudgets, MatchTheClosedForms) {
  const BAConfig alg1_config{7, 3, 0, 1};
  const Budgets alg1 = budgets_for("alg1", alg1_config);
  ASSERT_TRUE(alg1.messages.has_value());
  EXPECT_EQ(*alg1.messages,
            static_cast<double>(bounds::alg1_message_upper_bound(3)));
  ASSERT_TRUE(alg1.phases.has_value());

  const BAConfig ds_config{6, 2, 0, 1};
  const Budgets ds = budgets_for("dolev-strong", ds_config);
  ASSERT_TRUE(ds.messages.has_value());
  EXPECT_EQ(*ds.messages,
            static_cast<double>(
                bounds::dolev_strong_broadcast_message_bound(6)));

  // No closed form stated for EIG: phase budget only.
  const Budgets eig = budgets_for("eig", BAConfig{7, 2, 0, 1});
  EXPECT_FALSE(eig.messages.has_value());
  EXPECT_TRUE(eig.phases.has_value());
}

Scenario small_scenario() {
  Scenario scenario;
  scenario.protocol = "dolev-strong";
  scenario.config = BAConfig{5, 1, 0, 1};
  scenario.seed = 42;
  scenario.plan_seed = 43;
  return scenario;
}

TEST(ChaosExecute, FailureFreeRunPassesTheWatchdog) {
  const Scenario scenario = small_scenario();
  const Outcome outcome = execute(scenario);
  EXPECT_EQ(outcome.effective_faulty_count, 0u);
  EXPECT_TRUE(outcome.perturbed.empty());

  const Budgets budgets = budgets_for(scenario.protocol, scenario.config);
  const InvariantReport report =
      check_invariants(scenario, outcome, outcome.effective_faulty, budgets);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

TEST(ChaosExecute, DeterministicAcrossRepeats) {
  Scenario scenario = small_scenario();
  scenario.scripted.push_back(
      ScriptedFault{ScriptedKind::kChaos, 4, 1, /*seed=*/9, 0.4});
  scenario.rules.push_back(
      {sim::FaultKind::kCorrupt, 1, 2, sim::kAnyPhase});

  const Outcome a = execute(scenario);
  const Outcome b = execute(scenario);
  EXPECT_EQ(a.result.decisions, b.result.decisions);
  EXPECT_EQ(a.effective_faulty, b.effective_faulty);
  EXPECT_EQ(a.perturbed, b.perturbed);
}

TEST(ChaosExecute, PerturbedProcessorsJoinTheEffectiveFaultySet) {
  Scenario scenario = small_scenario();
  // Receive omission on 4's inbound links: the transport charges 4.
  scenario.rules.push_back(
      {sim::FaultKind::kOmitReceive, sim::kAnyProc, 4, sim::kAnyPhase});
  const Outcome outcome = execute(scenario);
  EXPECT_EQ(outcome.perturbed, std::vector<ProcId>{4});
  EXPECT_EQ(outcome.effective_faulty_count, 1u);
  EXPECT_FALSE(outcome.scripted_faulty[4]);
  EXPECT_TRUE(outcome.effective_faulty[4]);

  // Within budget (t=1): invariants hold for the remaining four.
  const InvariantReport report = check_invariants(
      scenario, outcome, outcome.effective_faulty,
      budgets_for(scenario.protocol, scenario.config));
  EXPECT_TRUE(report.ok);
}

TEST(ChaosWatchdog, FlagsDisagreementUnderScriptedOnlyAccounting) {
  Scenario scenario = small_scenario();
  scenario.rules.push_back(
      {sim::FaultKind::kOmitReceive, sim::kAnyProc, 4, sim::kAnyPhase});
  const Outcome outcome = execute(scenario);
  // Charging nobody, processor 4 (which saw silence and decided the
  // default 0 against the transmitter's 1) is a visible violation.
  const InvariantReport report = check_invariants(
      scenario, outcome, outcome.scripted_faulty,
      budgets_for(scenario.protocol, scenario.config));
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
}

TEST(ChaosWatchdog, CorrectRunsStayWithinReplayableHistory) {
  // The recorded history of a transport-faulted run must still replay
  // correctly for the unperturbed processors (their out-edges are
  // faithful), which is what makes reproducers auditable.
  Scenario scenario = small_scenario();
  scenario.rules.push_back(
      {sim::FaultKind::kDrop, 2, 3, sim::kAnyPhase});
  const Outcome outcome = execute(scenario);
  const auto protocol = resolve_protocol(scenario.protocol);
  ASSERT_TRUE(protocol.has_value());
  const auto report = ba::validate_correctness(
      outcome.result.history, *protocol, scenario.config,
      outcome.effective_faulty, scenario.seed);
  EXPECT_TRUE(report.conforming);
}

TEST(ChaosJson, RoundTripsScenariosAndViolations) {
  Scenario scenario = small_scenario();
  scenario.scripted.push_back(ScriptedFault{ScriptedKind::kCrash, 3, 2});
  scenario.rules.push_back(
      {sim::FaultKind::kDrop, 1, sim::kAnyProc, 2});
  scenario.rules.push_back(
      {sim::FaultKind::kCorrupt, sim::kAnyProc, 0, sim::kAnyPhase});
  const std::vector<std::string> violations{"agreement: \"quoted\"",
                                            "phase budget: 9 > 8"};

  const std::string json = to_json(scenario, violations);
  std::vector<std::string> loaded_violations;
  std::string error;
  const auto loaded =
      scenario_from_json(json, &loaded_violations, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, scenario);
  EXPECT_EQ(loaded_violations, violations);
}

TEST(ChaosJson, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(scenario_from_json("not json", nullptr, &error).has_value());
  EXPECT_FALSE(scenario_from_json("{}", nullptr, &error).has_value());

  // Unknown protocol.
  EXPECT_FALSE(scenario_from_json(
                   R"({"protocol":"nope","n":5,"t":1,"transmitter":0,)"
                   R"("value":1,"seed":1,"plan_seed":1})",
                   nullptr, &error)
                   .has_value());

  // More scripted faults than t (would trip run_scenario's contract).
  EXPECT_FALSE(
      scenario_from_json(
          R"({"protocol":"dolev-strong","n":5,"t":1,"transmitter":0,)"
          R"("value":1,"seed":1,"plan_seed":1,"scripted":[)"
          R"({"kind":"silent","id":1},{"kind":"silent","id":2}]})",
          nullptr, &error)
          .has_value());

  // Unsupported (n, t) for the protocol (alg1 needs n == 2t+1).
  EXPECT_FALSE(scenario_from_json(
                   R"({"protocol":"alg1","n":9,"t":1,"transmitter":0,)"
                   R"("value":1,"seed":1,"plan_seed":1})",
                   nullptr, &error)
                   .has_value());
}

TEST(ChaosMinimize, FindsTheOneRuleThatMatters) {
  Scenario scenario = small_scenario();
  // Nine irrelevant rules around the one that isolates processor 4.
  for (ProcId p = 0; p < 3; ++p) {
    scenario.rules.push_back({sim::FaultKind::kDuplicate, p, p + 1, 1});
    scenario.rules.push_back({sim::FaultKind::kDrop, p, p + 1, 999});
    scenario.rules.push_back({sim::FaultKind::kCorrupt, p, p + 1, 998});
  }
  const sim::FaultRule key{sim::FaultKind::kOmitReceive, sim::kAnyProc, 4,
                           sim::kAnyPhase};
  scenario.rules.insert(scenario.rules.begin() + 4, key);

  auto still_fails = [&key](const Scenario& candidate) {
    return std::find(candidate.rules.begin(), candidate.rules.end(), key) !=
           candidate.rules.end();
  };
  const Scenario minimal = minimize(scenario, still_fails);
  ASSERT_EQ(minimal.rules.size(), 1u);
  EXPECT_EQ(minimal.rules[0], key);
}

TEST(ChaosSoak, SmallSweepFindsNoViolations) {
  SoakOptions options;
  options.runs = 150;
  options.seed = 2026;
  const SoakStats stats = soak(options);
  EXPECT_EQ(stats.runs, 150u);
  EXPECT_GT(stats.checked, 0u);
  EXPECT_TRUE(stats.findings.empty())
      << stats.findings.front().reproducer_json;
}

TEST(ChaosHunt, OverBudgetFindingMinimizesAndReplays) {
  const BAConfig config{5, 1, 0, 1};
  const auto finding = hunt_over_budget("dolev-strong", config, /*seed=*/1);
  ASSERT_TRUE(finding.has_value());
  EXPECT_LE(finding->scenario.rules.size(), 5u);
  ASSERT_FALSE(finding->violations.empty());

  // The reproducer parses back to the identical scenario...
  std::vector<std::string> recorded;
  std::string error;
  const auto loaded =
      scenario_from_json(finding->reproducer_json, &recorded, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, finding->scenario);
  EXPECT_EQ(recorded, finding->violations);

  // ...and replays to the same violations under scripted-only accounting.
  const Outcome outcome = execute(*loaded);
  EXPECT_GT(outcome.effective_faulty_count, loaded->config.t);
  const InvariantReport report = check_invariants(
      *loaded, outcome, outcome.scripted_faulty,
      budgets_for(loaded->protocol, loaded->config));
  EXPECT_EQ(report.violations, finding->violations);
}

}  // namespace
}  // namespace dr::chaos
