// PhaseSynchronizer: barrier release order, early-frame buffering, the
// omission-faulty straggler path, and a slow-but-correct endpoint catching
// up through the buffers at the full NetRunner level.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "ba/registry.h"
#include "net/harness.h"
#include "net/inprocess.h"
#include "net/runner.h"
#include "net/synchronizer.h"
#include "sim/metrics.h"

namespace dr::net {
namespace {

using std::chrono::milliseconds;

Bytes marker(std::uint8_t value) { return Bytes(4, value); }

void send_payload(Transport& transport, ProcId from, ProcId to,
                  PhaseNum phase, sim::Metrics& metrics, Bytes payload) {
  const Bytes frame = encode_frame(
      Frame{FrameKind::kPayload, from, to, phase, std::move(payload)});
  metrics.on_frame(true, frame.size());
  transport.send(from, to, frame);
}

TEST(NetSync, TwoEndpointsExchangeOnePhase) {
  InProcessTransport transport(2);
  std::vector<Envelope> inbox0, inbox1;
  std::thread peer([&] {
    sim::Metrics metrics(2);
    PhaseSynchronizer sync(1, 2, transport, milliseconds(2000));
    send_payload(transport, 1, 0, 1, metrics, marker(0xB1));
    inbox1 = sync.advance(1, true, metrics);
  });
  sim::Metrics metrics(2);
  PhaseSynchronizer sync(0, 2, transport, milliseconds(2000));
  send_payload(transport, 0, 1, 1, metrics, marker(0xA0));
  inbox0 = sync.advance(1, true, metrics);
  peer.join();

  ASSERT_EQ(inbox0.size(), 1u);
  EXPECT_EQ(inbox0[0].from, 1u);
  EXPECT_EQ(inbox0[0].sent_phase, 1u);
  EXPECT_EQ(inbox0[0].payload, marker(0xB1));
  ASSERT_EQ(inbox1.size(), 1u);
  EXPECT_EQ(inbox1[0].payload, marker(0xA0));
  EXPECT_EQ(sync.stats().stragglers, 0u);
  transport.shutdown();
}

TEST(NetSync, EarlyFramesAreBufferedUntilTheirPhase) {
  // The peer races ahead: it finishes phase 1 and already sends its
  // phase-2 traffic before this endpoint reaches the phase-1 barrier. The
  // early frames must sit in the buffer and come out exactly at phase 2.
  InProcessTransport transport(2);
  std::thread peer([&] {
    sim::Metrics metrics(2);
    PhaseSynchronizer sync(1, 2, transport, milliseconds(2000));
    sync.advance(1, true, metrics);  // nothing sent in phase 1
    send_payload(transport, 1, 0, 2, metrics, marker(0xE2));
    sync.advance(2, true, metrics);
  });
  // Give the peer time to run ahead before this endpoint even starts.
  std::this_thread::sleep_for(milliseconds(100));
  sim::Metrics metrics(2);
  PhaseSynchronizer sync(0, 2, transport, milliseconds(2000));
  const std::vector<Envelope> phase1 = sync.advance(1, true, metrics);
  EXPECT_TRUE(phase1.empty());
  const std::vector<Envelope> phase2 = sync.advance(2, true, metrics);
  peer.join();
  ASSERT_EQ(phase2.size(), 1u);
  EXPECT_EQ(phase2[0].sent_phase, 2u);
  EXPECT_EQ(phase2[0].payload, marker(0xE2));
  transport.shutdown();
}

TEST(NetSync, StragglerIsDeclaredOmissionFaultyOnce) {
  // Endpoint 2 exists but never speaks. The live endpoints must not hang:
  // after the timeout they charge it as omission-faulty and stop waiting
  // for it at every later barrier (no repeated timeout stalls).
  InProcessTransport transport(3);
  std::thread peer([&] {
    sim::Metrics metrics(3);
    PhaseSynchronizer sync(1, 3, transport, milliseconds(150));
    sync.advance(1, true, metrics);
    sync.advance(2, true, metrics);
  });
  sim::Metrics metrics(3);
  PhaseSynchronizer sync(0, 3, transport, milliseconds(150));
  sync.advance(1, true, metrics);
  const auto second_barrier_start = std::chrono::steady_clock::now();
  sync.advance(2, true, metrics);
  const auto second_barrier = std::chrono::steady_clock::now() -
                              second_barrier_start;
  peer.join();

  ASSERT_EQ(sync.stats().omission_faulty.size(), 1u);
  EXPECT_EQ(sync.stats().omission_faulty[0], 2u);
  EXPECT_EQ(sync.stats().stragglers, 1u);
  // The second barrier must not re-serve the timeout for the dead peer.
  EXPECT_LT(second_barrier, milliseconds(150));
  transport.shutdown();
}

TEST(NetSync, LateFramesForReleasedPhasesAreStale) {
  InProcessTransport transport(2);
  std::thread peer([&] {
    // Miss the phase-1 barrier entirely, then send phase-1 traffic late.
    std::this_thread::sleep_for(milliseconds(250));
    sim::Metrics metrics(2);
    send_payload(transport, 1, 0, 1, metrics, marker(0xDD));
  });
  sim::Metrics metrics(2);
  PhaseSynchronizer sync(0, 2, transport, milliseconds(100));
  const std::vector<Envelope> phase1 = sync.advance(1, true, metrics);
  EXPECT_TRUE(phase1.empty());
  EXPECT_EQ(sync.stats().stragglers, 1u);
  peer.join();
  // Drain after the late frame definitely arrived: it must be counted
  // stale, not delivered at a later phase.
  const std::vector<Envelope> phase2 = sync.advance(2, true, metrics);
  EXPECT_TRUE(phase2.empty());
  EXPECT_EQ(sync.stats().stale_frames, 1u);
  transport.shutdown();
}

/// Wraps a correct process and sleeps before every phase — a slow but
/// correct endpoint. With a generous phase timeout the others must wait at
/// the barrier (not declare it faulty), and everyone still agrees.
class SlowProcess : public sim::Process {
 public:
  SlowProcess(std::unique_ptr<sim::Process> inner, milliseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}
  void on_phase(sim::Context& ctx) override {
    std::this_thread::sleep_for(delay_);
    inner_->on_phase(ctx);
  }
  std::optional<sim::Value> decision() const override {
    return inner_->decision();
  }

 private:
  std::unique_ptr<sim::Process> inner_;
  milliseconds delay_;
};

TEST(NetSync, SleepyCorrectEndpointCatchesUp) {
  const ba::Protocol* protocol = ba::find_protocol("dolev-strong");
  ASSERT_NE(protocol, nullptr);
  const ba::BAConfig config{4, 1, 0, 1};
  ASSERT_TRUE(protocol->supports(config));

  const auto transport = make_transport(Backend::kInProcess, config.n);
  NetConfig net_config{.n = config.n, .t = config.t, .transmitter = 0,
                       .value = 1, .seed = 7};
  NetRunner runner(net_config, *transport);
  for (ProcId p = 0; p < config.n; ++p) {
    auto process = protocol->make(p, config);
    if (p == 2) {
      process = std::make_unique<SlowProcess>(std::move(process),
                                              milliseconds(40));
    }
    runner.install(p, std::move(process));
  }
  const NetRunResult result = runner.run(protocol->steps(config));
  EXPECT_TRUE(result.sync.omission_faulty.empty());
  const sim::AgreementCheck check =
      sim::check_byzantine_agreement(result.run, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
  ASSERT_TRUE(check.agreed_value.has_value());
  EXPECT_EQ(*check.agreed_value, 1u);
}

}  // namespace
}  // namespace dr::net
