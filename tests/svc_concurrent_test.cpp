// Instance isolation: many BA instances interleaved over one daemon and
// one client connection, each deciding exactly what it decides when run
// solo. Instances share the endpoint mesh's sockets and the per-process
// reactors, so any cross-instance leakage — a frame routed to the wrong
// instance table entry, metrics bleeding between workers, a seed applied
// to the wrong run — surfaces as a diff against the solo reference.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/harness.h"
#include "sim/chaos.h"
#include "svc_test_util.h"

namespace dr::svc {
namespace {

struct Job {
  std::string label;
  SubmitRequest req;
};

/// A mixed batch: different protocols, sizes (participant subsets of the
/// mesh), transmitters, values, seeds and fault surfaces, all in flight
/// at once.
std::vector<Job> mixed_batch(std::size_t endpoints, std::size_t copies) {
  std::vector<Job> jobs;
  const std::vector<std::pair<std::string, ba::BAConfig>> shapes = {
      {"dolev-strong", {endpoints, 1, 0, 1}},
      {"dolev-strong", {3, 1, 2, 0}},
      {"eig", {4, 1, 0, 1}},
      {"alg1", {5, 2, 0, 1}},
      {"phase-king", {5, 1, 0, 1}},
  };
  for (std::size_t copy = 0; copy < copies; ++copy) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      Job job;
      job.req.protocol = shapes[s].first;
      job.req.config = shapes[s].second;
      job.req.seed = 100 + copy * shapes.size() + s;  // all distinct
      job.req.config.value ^= copy & 1;
      if (s == 3) {
        // Every odd copy of the alg1 shape carries a scripted fault, so
        // faulty and clean instances interleave on the same mesh.
        if (copy % 2 == 1) {
          chaos::ScriptedFault silent;
          silent.kind = chaos::ScriptedKind::kSilent;
          silent.id = 1;
          job.req.scripted.push_back(silent);
        }
      }
      if (s == 2 && copy % 3 == 1) {
        job.req.plan_seed = job.req.seed;
        job.req.rules.push_back({sim::FaultKind::kDrop, 1, 2, 1});
      }
      job.label = job.req.protocol + "/n=" +
                  std::to_string(job.req.config.n) + "/seed=" +
                  std::to_string(job.req.seed);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

chaos::Scenario to_scenario(const SubmitRequest& req) {
  chaos::Scenario scenario;
  scenario.protocol = req.protocol;
  scenario.config = req.config;
  scenario.seed = req.seed;
  scenario.plan_seed = req.plan_seed;
  scenario.scripted = req.scripted;
  scenario.rules = req.rules;
  return scenario;
}

TEST(SvcConcurrent, InterleavedInstancesMatchTheirSoloRuns) {
  test::SvcDaemon daemon(5);
  ASSERT_TRUE(daemon.up());

  const std::vector<Job> jobs = mixed_batch(5, 6);  // 30 instances
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs.size());
  for (const Job& job : jobs) {
    const std::uint64_t id = daemon.client().submit(job.req);
    ASSERT_NE(id, 0u) << job.label;
    ids.push_back(id);
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    const auto resp =
        daemon.client().wait(ids[i], std::chrono::seconds(120));
    ASSERT_TRUE(resp.has_value()) << jobs[i].label << ": timeout";
    ASSERT_TRUE(resp->ok) << jobs[i].label << ": " << resp->error;
    EXPECT_FALSE(resp->watchdog_fired) << jobs[i].label;

    // The solo reference: the simulator running exactly this scenario,
    // alone. The interleaved instance must be indistinguishable from it.
    const chaos::Outcome want =
        chaos::execute(to_scenario(jobs[i].req), chaos::Backend::kSim);
    sim::RunResult got;
    got.decisions = resp->decisions;
    got.faulty = resp->scripted_faulty;
    got.metrics = resp->metrics;
    net::ParityReport report;
    net::compare_parity_runs("svc", want.result, got, report);
    for (const std::string& mismatch : report.mismatches) {
      ADD_FAILURE() << jobs[i].label << ": " << mismatch;
    }
    EXPECT_EQ(resp->perturbed, want.perturbed) << jobs[i].label;
  }

  // The daemon saw every instance and failed none of them.
  const auto text = daemon.client().metrics(std::chrono::seconds(10));
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("dr82_instances_completed_total " +
                       std::to_string(jobs.size())),
            std::string::npos);
  EXPECT_NE(text->find("dr82_instances_failed_total 0"), std::string::npos);
}

TEST(SvcConcurrent, RepeatedSubmissionsAreDeterministic) {
  // The same request submitted many times concurrently: identical
  // responses every time — decisions, metrics, everything. Instances do
  // not perturb each other even when they are byte-for-byte the same
  // traffic pattern racing on the same links.
  test::SvcDaemon daemon(4);
  ASSERT_TRUE(daemon.up());

  SubmitRequest req;
  req.protocol = "dolev-strong";
  req.config = {4, 1, 0, 1};
  req.seed = 77;

  constexpr std::size_t kCopies = 12;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < kCopies; ++i) {
    const std::uint64_t id = daemon.client().submit(req);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  std::optional<DecisionResponse> first;
  for (std::size_t i = 0; i < kCopies; ++i) {
    const auto resp = daemon.client().wait(ids[i], std::chrono::seconds(60));
    ASSERT_TRUE(resp.has_value()) << "copy " << i;
    ASSERT_TRUE(resp->ok) << "copy " << i;
    if (!first.has_value()) {
      first = *resp;
      continue;
    }
    EXPECT_EQ(resp->decisions, first->decisions) << "copy " << i;
    EXPECT_EQ(resp->metrics.messages_by_correct(),
              first->metrics.messages_by_correct())
        << "copy " << i;
    EXPECT_EQ(resp->metrics.signatures_by_correct(),
              first->metrics.signatures_by_correct())
        << "copy " << i;
    EXPECT_EQ(resp->metrics.bytes_by_correct(),
              first->metrics.bytes_by_correct())
        << "copy " << i;
    EXPECT_EQ(resp->metrics.frames_sent(), first->metrics.frames_sent())
        << "copy " << i;
  }
}

}  // namespace
}  // namespace dr::svc
