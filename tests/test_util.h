// Shared helpers for the protocol test suites.
//
// The fault builders delegate to chaos::to_scenario_fault — the same seam
// the chaos soak and the conformance engine's generators (src/check)
// construct scenarios through — so a behaviour exercised by hand here is
// the identical object the randomized engines draw.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/strategies.h"
#include "ba/registry.h"
#include "sim/chaos.h"
#include "sim/runner.h"

namespace dr::test {

using ba::BAConfig;
using ba::Protocol;
using ba::ProcId;
using ba::ScenarioFault;
using ba::Value;

/// A fault that stays completely silent.
inline ScenarioFault silent(ProcId id) {
  dr::chaos::ScriptedFault fault;
  fault.kind = dr::chaos::ScriptedKind::kSilent;
  fault.id = id;
  // kSilent ignores the protocol; any registry entry satisfies the seam.
  return dr::chaos::to_scenario_fault(ba::protocols().front(), fault);
}

/// A fault that runs the correct protocol, then crashes at `phase`.
inline ScenarioFault crash(const Protocol& protocol, ProcId id,
                           sim::PhaseNum phase) {
  dr::chaos::ScriptedFault fault;
  fault.kind = dr::chaos::ScriptedKind::kCrash;
  fault.id = id;
  fault.crash_phase = phase;
  return dr::chaos::to_scenario_fault(protocol, fault);
}

/// A randomized Byzantine fault. Note the seam folds no per-id entropy in;
/// callers wanting distinct behaviours per processor pass distinct seeds.
inline ScenarioFault chaos_fault(ProcId id, std::uint64_t seed,
                                 double send_prob = 0.3) {
  dr::chaos::ScriptedFault fault;
  fault.kind = dr::chaos::ScriptedKind::kChaos;
  fault.id = id;
  fault.seed = seed ^ id;  // preserve the historical per-id derivation
  fault.send_prob = send_prob;
  return dr::chaos::to_scenario_fault(ba::protocols().front(), fault);
}

/// Back-compat name used across the suites.
inline ScenarioFault chaos(ProcId id, std::uint64_t seed,
                           double send_prob = 0.3) {
  return chaos_fault(id, seed, send_prob);
}

/// A transmitter that signs 1 for `ones` and 0 for the rest, phase 1 only.
inline ScenarioFault equivocator(std::set<ProcId> ones) {
  dr::chaos::ScriptedFault fault;
  fault.kind = dr::chaos::ScriptedKind::kEquivocate;
  fault.id = 0;
  for (ProcId p : ones) fault.ones_mask |= std::uint64_t{1} << p;
  return dr::chaos::to_scenario_fault(ba::protocols().front(), fault);
}

/// A fault that buffers and rebroadcasts everything `delay` phases late.
inline ScenarioFault delayed_echo(ProcId id, sim::PhaseNum delay) {
  dr::chaos::ScriptedFault fault;
  fault.kind = dr::chaos::ScriptedKind::kDelayedEcho;
  fault.id = id;
  fault.delay = delay;
  return dr::chaos::to_scenario_fault(ba::protocols().front(), fault);
}

/// Runs the scenario and asserts both Byzantine Agreement conditions.
inline sim::RunResult expect_agreement(
    const Protocol& protocol, const BAConfig& config, std::uint64_t seed,
    const std::vector<ScenarioFault>& faults = {}) {
  const auto result = ba::run_scenario(protocol, config, seed, faults);
  const auto check =
      sim::check_byzantine_agreement(result, config.transmitter,
                                     config.value);
  EXPECT_TRUE(check.agreement)
      << protocol.name << " n=" << config.n << " t=" << config.t
      << " v=" << config.value << ": correct processors disagree";
  EXPECT_TRUE(check.validity)
      << protocol.name << " n=" << config.n << " t=" << config.t
      << " v=" << config.value << ": validity violated";
  return result;
}

}  // namespace dr::test
