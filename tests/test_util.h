// Shared helpers for the protocol test suites.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/strategies.h"
#include "ba/registry.h"
#include "sim/runner.h"

namespace dr::test {

using ba::BAConfig;
using ba::Protocol;
using ba::ProcId;
using ba::ScenarioFault;
using ba::Value;

/// A fault that stays completely silent.
inline ScenarioFault silent(ProcId id) {
  return ScenarioFault{id, [](ProcId, const BAConfig&) {
                         return std::make_unique<adversary::SilentProcess>();
                       }};
}

/// A fault that runs the correct protocol, then crashes at `phase`.
inline ScenarioFault crash(const Protocol& protocol, ProcId id,
                           sim::PhaseNum phase) {
  return ScenarioFault{
      id, [&protocol, phase](ProcId p, const BAConfig& c) {
        return std::make_unique<adversary::CrashProcess>(protocol.make(p, c),
                                                         phase);
      }};
}

/// A randomized Byzantine fault (seeded per id for reproducibility).
inline ScenarioFault chaos(ProcId id, std::uint64_t seed,
                           double send_prob = 0.3) {
  return ScenarioFault{
      id, [seed, send_prob](ProcId p, const BAConfig&) {
        return std::make_unique<adversary::RandomByzantine>(seed ^ p,
                                                            send_prob);
      }};
}

/// A transmitter that signs 1 for `ones` and 0 for the rest, phase 1 only.
inline ScenarioFault equivocator(std::set<ProcId> ones) {
  return ScenarioFault{
      0, [ones = std::move(ones)](ProcId, const BAConfig& c) {
        return std::make_unique<adversary::EquivocatingTransmitter>(ones,
                                                                    c.n);
      }};
}

/// A fault that buffers and rebroadcasts everything `delay` phases late.
inline ScenarioFault delayed_echo(ProcId id, sim::PhaseNum delay) {
  return ScenarioFault{id, [delay](ProcId, const BAConfig&) {
                         return std::make_unique<adversary::DelayedEcho>(
                             delay);
                       }};
}

/// Runs the scenario and asserts both Byzantine Agreement conditions.
inline sim::RunResult expect_agreement(
    const Protocol& protocol, const BAConfig& config, std::uint64_t seed,
    const std::vector<ScenarioFault>& faults = {}) {
  const auto result = ba::run_scenario(protocol, config, seed, faults);
  const auto check =
      sim::check_byzantine_agreement(result, config.transmitter,
                                     config.value);
  EXPECT_TRUE(check.agreement)
      << protocol.name << " n=" << config.n << " t=" << config.t
      << " v=" << config.value << ": correct processors disagree";
  EXPECT_TRUE(check.validity)
      << protocol.name << " n=" << config.n << " t=" << config.t
      << " v=" << config.value << ": validity violated";
  return result;
}

}  // namespace dr::test
