#include "crypto/signature.h"

#include <gtest/gtest.h>

#include "crypto/key_registry.h"
#include "util/bytes.h"

namespace dr::crypto {
namespace {

class SignatureTest : public ::testing::Test {
 protected:
  KeyRegistry registry_{5, /*master_seed=*/99};
  Verifier verifier_{&registry_};
};

TEST_F(SignatureTest, SignVerifyRoundTrip) {
  Signer signer(&registry_, {2});
  const Bytes msg = to_bytes("attack at dawn");
  const Signature sig = signer.sign(2, msg);
  EXPECT_EQ(sig.signer, 2u);
  EXPECT_TRUE(verifier_.verify(2, msg, sig));
}

TEST_F(SignatureTest, WrongClaimedSignerFails) {
  Signer signer(&registry_, {2});
  const Bytes msg = to_bytes("m");
  const Signature sig = signer.sign(2, msg);
  EXPECT_FALSE(verifier_.verify(3, msg, sig));
}

TEST_F(SignatureTest, TamperedMessageFails) {
  Signer signer(&registry_, {1});
  const Signature sig = signer.sign(1, to_bytes("original"));
  EXPECT_FALSE(verifier_.verify(1, to_bytes("originaX"), sig));
}

TEST_F(SignatureTest, TamperedMacFails) {
  Signer signer(&registry_, {1});
  const Bytes msg = to_bytes("m");
  Signature sig = signer.sign(1, msg);
  sig.sig[0] ^= 0x01;
  EXPECT_FALSE(verifier_.verify(1, msg, sig));
}

TEST_F(SignatureTest, SignatureTransplantedToOtherSignerFails) {
  // A signature by 1 relabelled as from 2 must not verify: the MAC domain
  // includes the signer id and the keys differ.
  Signer s1(&registry_, {1});
  const Bytes msg = to_bytes("m");
  Signature sig = s1.sign(1, msg);
  sig.signer = 2;
  EXPECT_FALSE(verifier_.verify(2, msg, sig));
}

TEST_F(SignatureTest, OutOfRangeSignerFails) {
  Signer signer(&registry_, {0});
  Signature sig = signer.sign(0, to_bytes("m"));
  sig.signer = 17;
  EXPECT_FALSE(verifier_.verify(17, to_bytes("m"), sig));
}

TEST_F(SignatureTest, CoalitionSignerHoldsAllItsIds) {
  Signer coalition(&registry_, {1, 3, 4});
  EXPECT_TRUE(coalition.holds(1));
  EXPECT_TRUE(coalition.holds(3));
  EXPECT_TRUE(coalition.holds(4));
  EXPECT_FALSE(coalition.holds(0));
  EXPECT_FALSE(coalition.holds(2));
  const Bytes msg = to_bytes("forged-together");
  EXPECT_TRUE(verifier_.verify(3, msg, coalition.sign(3, msg)));
}

TEST_F(SignatureTest, SignaturesAreDeterministicPerKey) {
  Signer a(&registry_, {0});
  Signer b(&registry_, {0});
  const Bytes msg = to_bytes("m");
  EXPECT_EQ(a.sign(0, msg), b.sign(0, msg));
}

TEST_F(SignatureTest, RegistriesWithDifferentSeedsDisagree) {
  KeyRegistry other(5, 100);
  Signer signer(&registry_, {0});
  const Bytes msg = to_bytes("m");
  const Signature sig = signer.sign(0, msg);
  Verifier other_verifier(&other);
  EXPECT_FALSE(other_verifier.verify(0, msg, sig));
}

TEST_F(SignatureTest, EncodeDecodeRoundTrip) {
  Signer signer(&registry_, {4});
  const Signature sig = signer.sign(4, to_bytes("wire"));
  Writer w;
  encode(w, sig);
  Reader r(w.out());
  const auto decoded = decode_signature(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(*decoded, sig);
}

TEST_F(SignatureTest, DecodeRejectsEmptySignature) {
  Writer w;
  w.u32(1);
  w.bytes(Bytes{});
  Reader r(w.out());
  EXPECT_EQ(decode_signature(r), std::nullopt);
}

TEST_F(SignatureTest, DecodeRejectsOversizedSignature) {
  Writer w;
  w.u32(1);
  w.bytes(Bytes(128 * 1024, 0xab));
  Reader r(w.out());
  EXPECT_EQ(decode_signature(r), std::nullopt);
}

TEST(KeyRegistry, DistinctKeysPerProcessor) {
  KeyRegistry registry(3, 7);
  const Bytes msg = to_bytes("m");
  EXPECT_NE(registry.sign(0, msg), registry.sign(1, msg));
  EXPECT_NE(registry.sign(1, msg), registry.sign(2, msg));
}

}  // namespace
}  // namespace dr::crypto
