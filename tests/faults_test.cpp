#include "sim/faults.h"

#include <gtest/gtest.h>

#include "ba/registry.h"
#include "test_util.h"

namespace dr::sim {
namespace {

Bytes payload(std::initializer_list<std::uint8_t> bytes) {
  return Bytes(bytes);
}

TEST(FaultRule, Strings) {
  EXPECT_EQ(to_string(FaultKind::kDrop), std::string("drop"));
  FaultKind kind;
  ASSERT_TRUE(fault_kind_from_string("omit-receive", kind));
  EXPECT_EQ(kind, FaultKind::kOmitReceive);
  EXPECT_FALSE(fault_kind_from_string("nope", kind));

  const FaultRule rule{FaultKind::kDrop, 1, kAnyProc, 2};
  EXPECT_EQ(to_string(rule), "drop(from=1, to=*, phase=2)");
}

TEST(FaultPlan, DropMatchesExactLinkAndChargesSender) {
  FaultPlan plan({{FaultKind::kDrop, 1, 2, 3}});
  // Wrong phase, wrong link: untouched, nothing charged.
  EXPECT_EQ(plan.apply(1, 2, 2, payload({0xaa})).size(), 1u);
  EXPECT_EQ(plan.apply(0, 2, 3, payload({0xaa})).size(), 1u);
  EXPECT_TRUE(plan.perturbed().empty());
  // Exact match: dropped, sender charged.
  EXPECT_TRUE(plan.apply(1, 2, 3, payload({0xaa})).empty());
  EXPECT_EQ(plan.perturbed(), std::set<ProcId>{1});
}

TEST(FaultPlan, CrashIsALowerBoundOnPhase) {
  FaultPlan plan({{FaultKind::kCrash, 4, kAnyProc, 3}});
  EXPECT_EQ(plan.apply(4, 0, 2, payload({1})).size(), 1u);
  EXPECT_TRUE(plan.apply(4, 0, 3, payload({1})).empty());
  EXPECT_TRUE(plan.apply(4, 1, 7, payload({1})).empty());
  EXPECT_EQ(plan.perturbed(), std::set<ProcId>{4});
}

TEST(FaultPlan, OmitReceiveChargesTheReceiver) {
  FaultPlan plan({{FaultKind::kOmitReceive, kAnyProc, 5, kAnyPhase}});
  EXPECT_TRUE(plan.apply(0, 5, 1, payload({1})).empty());
  EXPECT_TRUE(plan.apply(3, 5, 9, payload({1})).empty());
  EXPECT_EQ(plan.apply(0, 4, 1, payload({1})).size(), 1u);
  EXPECT_EQ(plan.perturbed(), std::set<ProcId>{5});
}

TEST(FaultPlan, DuplicateDeliversExtraCopies) {
  FaultPlan plan({{FaultKind::kDuplicate, 0, 1, kAnyPhase}});
  const auto delivered = plan.apply(0, 1, 1, payload({0x42}));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], payload({0x42}));
  EXPECT_EQ(delivered[1], payload({0x42}));
  EXPECT_EQ(plan.perturbed(), std::set<ProcId>{0});
}

TEST(FaultPlan, CorruptionIsDeterministicAndAlwaysChanges) {
  const std::vector<FaultRule> rules{{FaultKind::kCorrupt, 0, 1, 2}};
  FaultPlan a(rules, /*seed=*/7);
  FaultPlan b(rules, /*seed=*/7);
  FaultPlan c(rules, /*seed=*/8);

  const Bytes original = payload({1, 2, 3, 4});
  const auto out_a = a.apply(0, 1, 2, original);
  const auto out_b = b.apply(0, 1, 2, original);
  ASSERT_EQ(out_a.size(), 1u);
  EXPECT_NE(out_a[0], original);  // guaranteed mutation
  EXPECT_EQ(out_a, out_b);        // same seed, same mangling

  const auto out_c = c.apply(0, 1, 2, original);
  ASSERT_EQ(out_c.size(), 1u);
  EXPECT_NE(out_c[0], original);

  // Even an empty payload must change (a byte is appended).
  FaultPlan d(rules, 7);
  const auto out_d = d.apply(0, 1, 2, Bytes{});
  ASSERT_EQ(out_d.size(), 1u);
  EXPECT_FALSE(out_d[0].empty());
}

TEST(FaultPlan, DropShadowsCorruptAndDuplicate) {
  // If the message dies anyway, the corrupt/duplicate rules did not
  // change the outcome and must not charge anyone extra.
  FaultPlan plan({{FaultKind::kCorrupt, 0, 1, kAnyPhase},
                  {FaultKind::kDuplicate, 0, 1, kAnyPhase},
                  {FaultKind::kOmitReceive, kAnyProc, 1, kAnyPhase}});
  EXPECT_TRUE(plan.apply(0, 1, 1, payload({9})).empty());
  EXPECT_EQ(plan.perturbed(), std::set<ProcId>{1});
}

TEST(FaultPlan, ResetClearsTheAccounting) {
  FaultPlan plan({{FaultKind::kDrop, 2, kAnyProc, kAnyPhase}});
  EXPECT_TRUE(plan.apply(2, 0, 1, payload({1})).empty());
  EXPECT_FALSE(plan.perturbed().empty());
  plan.reset();
  EXPECT_TRUE(plan.perturbed().empty());
}

// --- End-to-end: a plan wired through run_scenario. -------------------

TEST(FaultPlanScenario, IsolatedReceiverCountsAgainstTheBudget) {
  // Kill every link into processor 4. The charged set is {4} (receive
  // omission charges the receiver), so with t=1 the run still satisfies
  // agreement/validity among processors 0..3.
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
  const ba::BAConfig config{5, 1, 0, 1};

  FaultPlan plan({{FaultKind::kOmitReceive, kAnyProc, 4, kAnyPhase}});
  ba::ScenarioOptions options;
  options.fault_plan = &plan;
  const auto result = ba::run_scenario(protocol, config, options);

  EXPECT_EQ(plan.perturbed(), std::set<ProcId>{4});

  auto probe = result;
  probe.faulty[4] = true;  // charge the perturbed processor
  const auto check = sim::check_byzantine_agreement(probe, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

TEST(FaultPlanScenario, MetricsCountSubmissionsHistoryRecordsDeliveries) {
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
  const ba::BAConfig config{4, 0, 0, 1};

  // Drop everything: senders still did the work (metrics), but nothing
  // crossed the wire (history).
  FaultPlan plan({{FaultKind::kDrop, kAnyProc, kAnyProc, kAnyPhase}});
  ba::ScenarioOptions options;
  options.record_history = true;
  options.fault_plan = &plan;
  const auto result = ba::run_scenario(protocol, config, options);

  EXPECT_GT(result.metrics.sent_by(0), 0u);
  for (PhaseNum k = 1; k <= result.history.phases(); ++k) {
    EXPECT_TRUE(result.history.phase(k).edges().empty());
  }
}

TEST(FaultPlanScenario, NoMatchingRulesLeaveTheRunUntouched) {
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
  const ba::BAConfig config{5, 1, 0, 1};

  const auto baseline = ba::run_scenario(protocol, config, 1);

  FaultPlan plan({{FaultKind::kDrop, 3, 2, 999}});  // phase never reached
  ba::ScenarioOptions options;
  options.fault_plan = &plan;
  const auto faulted = ba::run_scenario(protocol, config, options);

  EXPECT_TRUE(plan.perturbed().empty());
  EXPECT_EQ(faulted.decisions, baseline.decisions);
}

}  // namespace
}  // namespace dr::sim
