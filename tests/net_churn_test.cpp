// Crash tolerance of the net runtime: endpoints killed, restarted or
// wedged mid-run. Survivors must keep lock-step and decide correctly when
// the churned set stays within t; a run that cannot make progress must
// come back as a structured watchdog failure, never a hung test.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "ba/registry.h"
#include "net/harness.h"
#include "net/inprocess.h"
#include "net/runner.h"
#include "net/synchronizer.h"
#include "net/tcp.h"
#include "sim/chaos.h"
#include "sim/runner.h"

namespace dr::net {
namespace {

using std::chrono::milliseconds;

class ChurnTest : public ::testing::TestWithParam<Backend> {};

bool contains(const std::vector<ProcId>& ids, ProcId id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

/// Runs dolev-strong (n=5, t=1) with `churn`, one thread per endpoint, on
/// the parameterized backend.
NetRunResult run_with_churn(Backend backend,
                            const std::vector<sim::ChurnRule>& churn,
                            milliseconds run_deadline = milliseconds(0)) {
  const ba::Protocol* protocol = ba::find_protocol("dolev-strong");
  EXPECT_NE(protocol, nullptr);
  const ba::BAConfig config{5, 1, 0, 1};
  EXPECT_TRUE(protocol->supports(config));

  const auto transport = make_transport(backend, config.n);
  NetConfig net_config{.n = config.n,
                       .t = config.t,
                       .transmitter = config.transmitter,
                       .value = config.value,
                       .seed = 7,
                       .phase_timeout = milliseconds(5000),
                       .reconnect_window = milliseconds(200),
                       .run_deadline = run_deadline,
                       .churn = churn};
  NetRunner runner(net_config, *transport);
  for (ProcId p = 0; p < config.n; ++p) {
    runner.install(p, protocol->make(p, config));
  }
  return runner.run(protocol->steps(config));
}

TEST_P(ChurnTest, SurvivorsDecideWhenOneEndpointIsKilled) {
  // Kill endpoint 4 at each interesting point: before it ever speaks
  // (phase 0), after one phase of traffic (phase 1), and after the last
  // barrier (phase t+1 = 2, where nobody needs it any more). In every
  // case the remaining n-1 endpoints must reach agreement on the
  // transmitter's value — one killed endpoint is within t=1 — without a
  // single assert, hang or watchdog.
  const ProcId killed = 4;
  for (const PhaseNum kill_phase : {PhaseNum(0), PhaseNum(1), PhaseNum(2)}) {
    SCOPED_TRACE(testing::Message() << "kill at phase " << kill_phase);
    const NetRunResult result = run_with_churn(
        GetParam(),
        {{sim::ChurnKind::kKill, killed, kill_phase, 0}});

    EXPECT_FALSE(result.watchdog_fired);
    sim::RunResult probe;
    probe.decisions = result.run.decisions;
    probe.faulty = std::vector<bool>(5, false);
    probe.faulty[killed] = true;
    const sim::AgreementCheck check =
        sim::check_byzantine_agreement(probe, /*transmitter=*/0,
                                       /*value=*/1);
    EXPECT_TRUE(check.agreement);
    EXPECT_TRUE(check.validity);
    ASSERT_TRUE(check.agreed_value.has_value());
    EXPECT_EQ(*check.agreed_value, 1u);

    if (kill_phase < 2) {
      // The dead endpoint missed at least one barrier: the survivors must
      // have observed the link die and charged it as omission-faulty —
      // never anyone else.
      EXPECT_GE(result.sync.disconnects, 1u);
      EXPECT_TRUE(contains(result.sync.omission_faulty, killed));
      for (const ProcId p : result.sync.omission_faulty) {
        EXPECT_EQ(p, killed);
      }
      EXPECT_GE(result.run.metrics.net_endpoints_degraded(), 1u);
    } else {
      // Killed after the last barrier: nobody may have demoted anyone.
      EXPECT_TRUE(result.sync.omission_faulty.empty());
    }
  }
}

TEST_P(ChurnTest, SurvivorsMatchSimWhenAnEndpointRestarts) {
  // Endpoint 2 severs every link at the top of phase 2 (a process restart
  // losing in-flight input) and rejoins through redial. The restarted
  // endpoint itself may have lost inbound frames, but the survivors'
  // inboxes stay complete — their decisions must be bit-identical to the
  // synchronous simulator's.
  const ba::Protocol* protocol = ba::find_protocol("dolev-strong");
  ASSERT_NE(protocol, nullptr);
  const ba::BAConfig config{5, 1, 0, 1};
  const sim::RunResult sim_result =
      ba::run_scenario(*protocol, config, /*seed=*/7);

  const ProcId restarted = 2;
  const NetRunResult result = run_with_churn(
      GetParam(), {{sim::ChurnKind::kRestart, restarted, 2, 0}});

  EXPECT_FALSE(result.watchdog_fired);
  for (ProcId p = 0; p < config.n; ++p) {
    if (p == restarted) continue;
    EXPECT_EQ(result.run.decisions[p], sim_result.decisions[p])
        << "survivor " << p;
  }
  // The churn must have been visible at the net layer: links died, and the
  // restarted endpoint was seen again (fresh frames after the event).
  EXPECT_GE(result.sync.disconnects, 1u);
  EXPECT_GE(result.sync.reconnected_peers, 1u);
  EXPECT_GE(result.run.metrics.net_disconnects(), 1u);
  // A restart is churn, not omission: nobody may have been demoted.
  EXPECT_TRUE(result.sync.omission_faulty.empty());
}

TEST_P(ChurnTest, WatchdogConvertsAWedgedRunIntoStructuredFailure) {
  // Endpoint 3 hangs forever at phase 1 with its links healthy — the one
  // failure mode the phase barrier alone cannot bound (the generous phase
  // timeout is deliberately longer than the test). The run deadline must
  // fire, abort every thread, and report which endpoints were unfinished.
  const auto start = std::chrono::steady_clock::now();
  const NetRunResult result = run_with_churn(
      GetParam(), {{sim::ChurnKind::kHang, 3, 1, 0}},
      /*run_deadline=*/milliseconds(400));
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_TRUE(result.watchdog_fired);
  EXPECT_TRUE(contains(result.unfinished, 3));
  // Structured failure, promptly: well under the 5s phase timeout that a
  // hang would otherwise serve once per barrier.
  EXPECT_LT(elapsed, milliseconds(4000));
}

TEST_P(ChurnTest, SlowedEndpointStaysCorrect) {
  // kSlow at a few ms is far inside the phase timeout: no demotion, no
  // disconnects, and everyone (including the slow endpoint) decides.
  const NetRunResult result =
      run_with_churn(GetParam(), {{sim::ChurnKind::kSlow, 1, 1, 20}});
  EXPECT_FALSE(result.watchdog_fired);
  EXPECT_TRUE(result.sync.omission_faulty.empty());
  sim::RunResult probe;
  probe.decisions = result.run.decisions;
  probe.faulty = std::vector<bool>(5, false);
  const sim::AgreementCheck check =
      sim::check_byzantine_agreement(probe, 0, 1);
  EXPECT_TRUE(check.agreement);
  EXPECT_TRUE(check.validity);
}

TEST_P(ChurnTest, SendAfterDropDoesNotAbortAndEventIsDelivered) {
  // drop_endpoint is the churn primitive: after endpoint 1 severs its
  // links, a survivor's send must come back as a value (success after
  // redial, or a typed error) — never a crashed process — and the
  // survivor's recv must surface the kDisconnect event.
  const auto transport = make_transport(GetParam(), 3);
  const Bytes payload(16, 0xAB);
  ASSERT_EQ(transport->send(0, 1, payload), std::nullopt);
  transport->drop_endpoint(1);

  bool saw_event = false;
  for (int rounds = 0; rounds < 50 && !saw_event; ++rounds) {
    std::vector<RawChunk> chunks;
    transport->recv(0, chunks, milliseconds(100));
    for (const RawChunk& chunk : chunks) {
      if (chunk.event.has_value()) {
        EXPECT_EQ(chunk.from, 1u);
        EXPECT_EQ(chunk.event->kind, TransportErrorKind::kDisconnect);
        saw_event = true;
      }
    }
  }
  EXPECT_TRUE(saw_event);
  // The post-drop send: any outcome but an abort is acceptable.
  (void)transport->send(0, 1, payload);
  transport->shutdown();
}

INSTANTIATE_TEST_SUITE_P(Backends, ChurnTest,
                         ::testing::Values(Backend::kInProcess,
                                           Backend::kTcpLoopback),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ChurnSync, TruncatedFrameAtDisconnectIsDiscardedNotSpliced) {
  // A peer dies mid-frame and reconnects: frame A landed whole, frame B
  // was cut in half. The resent whole B must be delivered exactly once —
  // the half must be counted as truncation and discarded, never spliced
  // with the fresh connection's bytes into a CRC-garbage frame.
  InProcessTransport transport(2);
  sim::Metrics metrics(2);
  PhaseSynchronizer sync(0, 2, transport, milliseconds(2000),
                         milliseconds(2000));

  const Bytes frame_a = encode_frame(
      Frame{FrameKind::kPayload, 1, 0, 1, Bytes(8, 0xA1)});
  const Bytes frame_b = encode_frame(
      Frame{FrameKind::kPayload, 1, 0, 1, Bytes(8, 0xB2)});
  const Bytes half_b(frame_b.begin(),
                     frame_b.begin() + static_cast<std::ptrdiff_t>(
                                           frame_b.size() / 2));
  const Bytes done = encode_frame(Frame{FrameKind::kDone, 1, 0, 1, {}});

  ASSERT_EQ(transport.send(1, 0, frame_a), std::nullopt);
  ASSERT_EQ(transport.send(1, 0, half_b), std::nullopt);
  transport.drop_endpoint(1);  // the cut: half of B is in flight
  ASSERT_EQ(transport.send(1, 0, frame_b), std::nullopt);  // the resend
  ASSERT_EQ(transport.send(1, 0, done), std::nullopt);

  const std::vector<Envelope> inbox = sync.advance(1, true, metrics);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].payload, Bytes(8, 0xA1));
  EXPECT_EQ(inbox[1].payload, Bytes(8, 0xB2));

  const SyncStats& stats = sync.stats();
  EXPECT_EQ(stats.truncated_frames, 1u);
  EXPECT_EQ(stats.disconnects, 1u);
  EXPECT_EQ(stats.reconnected_peers, 1u);
  EXPECT_EQ(stats.frames.rejected(), 0u);  // nothing spliced, no CRC noise
  EXPECT_TRUE(stats.omission_faulty.empty());
  transport.shutdown();
}

TEST(ChurnTcp, SendDeadlineSurfacesTimeoutNotAWedge) {
  // Endpoint 1 never reads. Flooding it must eventually return a typed
  // kTimeout within the configured per-frame deadline — the send path may
  // retry while the deadline allows, but can no longer spin forever.
  TcpOptions options;
  options.send_deadline = milliseconds(100);
  TcpLoopbackTransport transport(2, options);

  const Bytes block(256 * 1024, 0xEE);
  std::optional<TransportError> error;
  for (int i = 0; i < 256 && !error.has_value(); ++i) {
    error = transport.send(0, 1, block);
  }
  ASSERT_TRUE(error.has_value()) << "socket buffers never filled";
  EXPECT_EQ(error->kind, TransportErrorKind::kTimeout);
  EXPECT_GE(transport.health(0).send_timeouts, 1u);
  EXPECT_GE(transport.health(0).send_retries, 1u);
  transport.shutdown();
}

TEST(ChurnChaos, ChurnScenariosRoundTripAndChargeTheBudget) {
  // The chaos plumbing: a churned processor counts against t, the JSON
  // reproducer round-trips backend + churn, and replaying it reproduces
  // the outcome.
  chaos::Scenario scenario;
  scenario.protocol = "dolev-strong";
  scenario.config = {5, 1, 0, 1};
  scenario.seed = 31;
  scenario.backend = chaos::Backend::kNet;
  scenario.churn.push_back({sim::ChurnKind::kKill, 4, 1, 0});

  const chaos::Outcome outcome = chaos::execute(scenario);
  EXPECT_FALSE(outcome.watchdog_fired);
  EXPECT_TRUE(outcome.effective_faulty[4]);
  EXPECT_EQ(outcome.effective_faulty_count, 1u);
  const chaos::InvariantReport report = chaos::check_invariants(
      scenario, outcome, outcome.effective_faulty,
      chaos::budgets_for(scenario.protocol, scenario.config));
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());

  const std::string json = chaos::to_json(scenario, report.violations);
  std::string error;
  const std::optional<chaos::Scenario> loaded =
      chaos::scenario_from_json(json, nullptr, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, scenario);

  const chaos::Outcome replay = chaos::execute(*loaded);
  EXPECT_EQ(replay.result.decisions, outcome.result.decisions);
}

TEST(ChurnChaos, WatchdogFiringIsAnInvariantViolation) {
  chaos::Scenario scenario;
  scenario.protocol = "dolev-strong";
  scenario.config = {4, 1, 0, 1};
  scenario.backend = chaos::Backend::kNet;

  chaos::Outcome outcome;  // synthetic: only the flag matters here
  outcome.result.decisions = {1, 1, 1, 1};
  outcome.result.faulty = std::vector<bool>(4, false);
  outcome.result.metrics = sim::Metrics(4);
  outcome.watchdog_fired = true;
  const chaos::InvariantReport report = chaos::check_invariants(
      scenario, outcome, std::vector<bool>(4, false),
      chaos::budgets_for(scenario.protocol, scenario.config));
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("watchdog"), std::string::npos);
}

}  // namespace
}  // namespace dr::net
