// Randomized property campaign: for every protocol, many seeds, random
// fault placements, kinds and adversary parameters — both Byzantine
// Agreement conditions must hold in every single run. This is the
// repository's broadest safety net; any counterexample prints its full
// recipe (protocol, seed, fault plan) for replay.
#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::ProcId;
using ba::Protocol;
using ba::ScenarioFault;
using ba::ScenarioOptions;
using ba::Value;

struct FuzzTarget {
  std::string label;
  Protocol protocol;
  std::size_t n;
  std::size_t t;
  bool binary_only;
};

std::vector<FuzzTarget> targets() {
  std::vector<FuzzTarget> out;
  auto add = [&](const Protocol& p, std::size_t n, std::size_t t,
                 bool binary) {
    out.push_back(FuzzTarget{p.name, p, n, t, binary});
  };
  add(*ba::find_protocol("dolev-strong"), 8, 2, false);
  add(*ba::find_protocol("dolev-strong-relay"), 10, 2, false);
  add(*ba::find_protocol("eig"), 7, 2, false);
  add(*ba::find_protocol("phase-king"), 13, 3, false);
  add(*ba::find_protocol("alg1"), 9, 4, true);
  add(*ba::find_protocol("alg1-mv"), 9, 4, false);
  add(*ba::find_protocol("alg2"), 9, 4, true);
  add(ba::make_alg3_protocol(4), 30, 3, true);
  add(ba::make_alg3_mv_protocol(4), 30, 3, false);
  add(ba::make_alg5_protocol(3), 40, 2, true);
  add(ba::make_alg5_mv_protocol(3), 40, 2, false);
  add(*ba::find_protocol("alg2-mv"), 9, 4, false);
  return out;
}

/// Draws a random fault plan: up to t faults at distinct random positions,
/// each with a random kind.
std::vector<ScenarioFault> random_faults(const FuzzTarget& target,
                                         const Protocol& protocol,
                                         Xoshiro256& rng) {
  const std::size_t count = rng.below(target.t + 1);
  std::set<ProcId> positions;
  while (positions.size() < count) {
    positions.insert(
        static_cast<ProcId>(rng.below(target.n)));
  }
  std::vector<ScenarioFault> faults;
  for (ProcId id : positions) {
    switch (rng.below(4)) {
      case 0:
        faults.push_back(test::silent(id));
        break;
      case 1:
        faults.push_back(test::chaos(id, rng.next(),
                                     0.05 + 0.4 * static_cast<double>(
                                                      rng.below(10)) / 10.0));
        break;
      case 2:
        faults.push_back(test::crash(
            protocol, id,
            static_cast<sim::PhaseNum>(
                1 + rng.below(protocol.steps(
                        BAConfig{target.n, target.t, 0, 1})))));
        break;
      default:
        if (id == 0) {
          std::set<ProcId> ones;
          for (ProcId q = 1; q < target.n; ++q) {
            if (rng.chance(0.5)) ones.insert(q);
          }
          faults.push_back(test::equivocator(std::move(ones)));
        } else {
          faults.push_back(test::chaos(id, rng.next(), 0.5));
        }
        break;
    }
  }
  return faults;
}

class FuzzCampaign : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCampaign, EveryProtocolEveryRandomAdversary) {
  const std::uint64_t campaign_seed = GetParam();
  for (const FuzzTarget& target : targets()) {
    Xoshiro256 rng(campaign_seed * 1000003 +
                   std::hash<std::string>{}(target.label));
    const Value value = target.binary_only
                            ? Value{rng.below(2)}
                            : Value{rng.below(100)};
    const BAConfig config{target.n, target.t, 0, value};
    ASSERT_TRUE(target.protocol.supports(config)) << target.label;
    const auto faults = random_faults(target, target.protocol, rng);
    const bool transmitter_faulty =
        !faults.empty() && std::any_of(faults.begin(), faults.end(),
                                       [](const ScenarioFault& f) {
                                         return f.id == 0;
                                       });
    ScenarioOptions options;
    options.seed = campaign_seed;
    options.rushing = rng.chance(0.5);
    const auto result =
        ba::run_scenario(target.protocol, config, options, faults);
    const auto check = sim::check_byzantine_agreement(result, 0, value);
    EXPECT_TRUE(check.agreement)
        << target.label << " campaign=" << campaign_seed
        << " faults=" << faults.size() << " value=" << value
        << " rushing=" << options.rushing;
    if (!transmitter_faulty) {
      EXPECT_TRUE(check.validity)
          << target.label << " campaign=" << campaign_seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCampaign,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{201}),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace dr
