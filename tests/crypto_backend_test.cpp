// Backend-equivalence fuzzing: every SHA-256 compression backend (scalar,
// SHA-NI, AVX2 multi-buffer) must be bit-identical on digests, midstate
// checkpoint/resume, HMACs, batch MACs and batch signature verification.
// This is what lets hash_backend() dispatch at runtime without the
// possibility of changing any wire byte. Backends the CPU cannot run are
// skipped visibly (GTEST_SKIP), never silently passed.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "crypto/hash_backend.h"
#include "crypto/hmac.h"
#include "crypto/key_registry.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/verify_cache.h"
#include "crypto/wots.h"
#include "util/bytes.h"

namespace dr::crypto {
namespace {

/// RAII backend switch: selects `name` for the test body, restores "auto"
/// on the way out so test order can never leak a pinned backend.
class BackendGuard {
 public:
  explicit BackendGuard(const char* name)
      : ok_(select_hash_backend(name)) {}
  ~BackendGuard() { select_hash_backend("auto"); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

bool backend_available(const std::string& name) {
  if (name == "scalar") return true;
  if (name == "shani") return cpu_supports_sha_ni();
  if (name == "avx2") return cpu_supports_avx2();
  return false;
}

#define REQUIRE_BACKEND(name)                                         \
  do {                                                                \
    if (!backend_available(name)) {                                   \
      GTEST_SKIP() << "CPU lacks the '" << (name)                     \
                   << "' SHA-256 backend; equivalence not testable "  \
                      "on this machine";                              \
    }                                                                 \
  } while (0)

Bytes random_bytes(std::mt19937_64& rng, std::size_t len) {
  Bytes out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// Streams `data` through Sha256 in random-sized chunks.
Digest chunked_digest(std::mt19937_64& rng, ByteView data) {
  Sha256 h;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t chunk =
        1 + static_cast<std::size_t>(rng() % (data.size() - pos));
    h.update(ByteView{data.data() + pos, chunk});
    pos += chunk;
  }
  return h.finish();
}

/// Digests, chunked streaming and peek() checkpoints computed under
/// `backend` over deterministic fuzz inputs. Lengths sweep the interesting
/// boundaries: empty, sub-block, exact block, multi-block, and large
/// multi-block inputs that exercise the n-block compress loop.
struct Transcript {
  std::vector<Digest> oneshot;
  std::vector<Digest> chunked;
  std::vector<Digest> checkpoints;  // peek() mid-stream, then resumed tail
  std::vector<Digest> hmacs;
  std::vector<Digest> batch_macs;
};

Transcript run_transcript(const char* backend) {
  BackendGuard guard(backend);
  EXPECT_TRUE(guard.ok()) << backend;
  Transcript t;
  std::mt19937_64 rng(0xD0'1E'5D'82u);  // fixed: transcripts must match

  std::vector<std::size_t> lengths = {0, 1, 3, 55, 56, 63, 64, 65, 127, 128};
  for (int i = 0; i < 24; ++i) lengths.push_back(rng() % 5000);

  const Bytes key_a = random_bytes(rng, 32);
  const Bytes key_b = random_bytes(rng, 91);  // > block size: gets hashed
  const HmacKey prepared_a(key_a);
  const HmacKey prepared_b(key_b);

  for (const std::size_t len : lengths) {
    const Bytes data = random_bytes(rng, len);
    t.oneshot.push_back(sha256(data));
    t.chunked.push_back(chunked_digest(rng, data));

    // Checkpoint/resume: peek() at a random split point, then keep
    // absorbing and finish. Both digests go into the transcript.
    Sha256 h;
    const std::size_t split = len == 0 ? 0 : rng() % (len + 1);
    h.update(ByteView{data.data(), split});
    t.checkpoints.push_back(h.peek());
    h.update(ByteView{data.data() + split, len - split});
    t.checkpoints.push_back(h.finish());

    t.hmacs.push_back(hmac_sha256(key_a, data));
    t.hmacs.push_back(prepared_b.mac(data));
  }

  // Batch MACs across the one-block boundary, mixed keys: the multi-buffer
  // path handles short messages, the fallback handles long ones, and both
  // must equal mac().
  std::vector<Bytes> messages;
  std::vector<HmacBatchItem> items;
  for (std::size_t len = 0; len <= kHmacOneBlockMax + 8; ++len) {
    messages.push_back(random_bytes(rng, len));
  }
  items.resize(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    items[i].key = (i % 2 == 0) ? &prepared_a : &prepared_b;
    items[i].message = messages[i];
  }
  hmac_mac_many(items.data(), items.size());
  for (const HmacBatchItem& item : items) t.batch_macs.push_back(item.out);
  return t;
}

void expect_transcripts_equal(const Transcript& a, const Transcript& b) {
  EXPECT_EQ(a.oneshot, b.oneshot);
  EXPECT_EQ(a.chunked, b.chunked);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.hmacs, b.hmacs);
  EXPECT_EQ(a.batch_macs, b.batch_macs);
}

TEST(HashBackendEquivalence, ShaNiMatchesScalar) {
  REQUIRE_BACKEND("shani");
  expect_transcripts_equal(run_transcript("scalar"), run_transcript("shani"));
}

TEST(HashBackendEquivalence, Avx2MatchesScalar) {
  REQUIRE_BACKEND("avx2");
  expect_transcripts_equal(run_transcript("scalar"), run_transcript("avx2"));
}

TEST(HashBackendEquivalence, BatchMacEqualsSequentialMacPerBackend) {
  std::mt19937_64 rng(7);
  const Bytes key = random_bytes(rng, 32);
  const HmacKey prepared(key);
  std::vector<Bytes> messages;
  for (int i = 0; i < 40; ++i) {
    messages.push_back(random_bytes(rng, rng() % 120));
  }
  for (const HashBackend* backend : supported_hash_backends()) {
    BackendGuard guard(backend->name);
    ASSERT_TRUE(guard.ok());
    std::vector<HmacBatchItem> items(messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i) {
      items[i].key = &prepared;
      items[i].message = messages[i];
    }
    hmac_mac_many(items.data(), items.size());
    for (std::size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(items[i].out, prepared.mac(messages[i]))
          << backend->name << " message " << i;
    }
  }
}

/// verify_batch must agree with verify() item by item, for every scheme and
/// every backend, across valid signatures, corrupted signatures, wrong
/// signers and wrong messages.
template <typename Scheme>
void check_scheme_batch(Scheme& scheme, std::size_t n) {
  std::mt19937_64 rng(42);
  std::vector<Bytes> datas;
  std::vector<Bytes> sigs;
  std::vector<ProcId> signers;
  for (int i = 0; i < 24; ++i) {
    const ProcId signer = static_cast<ProcId>(rng() % n);
    Bytes data = random_bytes(rng, 1 + rng() % 80);
    Bytes sig = scheme.sign(signer, data);
    switch (i % 4) {
      case 1:  // corrupt the signature
        sig[rng() % sig.size()] ^= 0x40;
        break;
      case 2:  // wrong message
        data[rng() % data.size()] ^= 0x01;
        break;
      case 3:  // wrong signer claims the signature
        signers.push_back(static_cast<ProcId>((signer + 1) % n));
        datas.push_back(std::move(data));
        sigs.push_back(std::move(sig));
        continue;
      default:
        break;
    }
    signers.push_back(signer);
    datas.push_back(std::move(data));
    sigs.push_back(std::move(sig));
  }

  std::vector<VerifyItem> items(datas.size());
  for (std::size_t i = 0; i < datas.size(); ++i) {
    items[i].signer = signers[i];
    items[i].data = datas[i];
    items[i].sig = sigs[i];
  }
  scheme.verify_batch(items.data(), items.size());
  std::size_t valid = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].ok, scheme.verify(signers[i], datas[i], sigs[i]))
        << "item " << i;
    if (items[i].ok) ++valid;
  }
  EXPECT_GT(valid, 0u);
  EXPECT_LT(valid, items.size());  // the corruptions actually corrupted
}

TEST(SchemeBatchVerify, HmacRegistryAllBackends) {
  for (const HashBackend* backend : supported_hash_backends()) {
    BackendGuard guard(backend->name);
    ASSERT_TRUE(guard.ok());
    KeyRegistry scheme(5, 0xABCD);
    check_scheme_batch(scheme, 5);
  }
}

TEST(SchemeBatchVerify, MerkleInheritedLoop) {
  MerkleScheme scheme(3, 0xABCD, 6);
  check_scheme_batch(scheme, 3);
}

TEST(SchemeBatchVerify, WotsInheritedLoop) {
  WotsScheme scheme(3, 0xABCD, 6);
  check_scheme_batch(scheme, 3);
}

TEST(SchemeBatchVerify, CryptoVerifyBatchMatchesSequential) {
  // crypto::verify_batch (the cache-aware chain-link entry point) against
  // the sequential lookup/verify/insert loop: same verdicts, same
  // counters, on two caches fed identical requests.
  KeyRegistry scheme(4, 99);
  std::mt19937_64 rng(3);
  std::vector<Bytes> sigs;
  std::vector<VerifyRequest> requests;
  for (int i = 0; i < 16; ++i) {
    const ProcId signer = static_cast<ProcId>(rng() % 4);
    // A chain-link signature covers the prefix digest itself, so sign the
    // digest bytes — the same shape verify_batch replays to the scheme.
    const Digest covered = sha256(random_bytes(rng, 16));
    Bytes sig =
        scheme.sign(signer, ByteView{covered.data(), covered.size()});
    if (i % 5 == 1) sig[0] ^= 0xFF;
    sigs.push_back(std::move(sig));
    VerifyRequest req;
    req.signer = signer;
    req.covered = covered;
    req.extended = sha256(sigs.back());
    requests.push_back(req);
  }
  // Duplicate a couple of requests: the batch must count one miss then
  // hits for repeats, like the sequential loop.
  requests.push_back(requests[0]);
  requests.push_back(requests[3]);
  sigs.push_back(sigs[0]);
  sigs.push_back(sigs[3]);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].sig = sigs[i];
  }

  std::vector<VerifyRequest> batch = requests;
  VerifyCache batch_cache;
  verify_batch(scheme, &batch_cache, batch.data(), batch.size());

  VerifyCache seq_cache;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    VerifyRequest& req = requests[i];
    if (auto hit = seq_cache.lookup(
            req.signer, req.covered,
            ByteView{req.sig.data(), req.sig.size()})) {
      req.ok = true;
      req.cached = true;
      continue;
    }
    req.ok = scheme.verify(
        req.signer, ByteView{req.covered.data(), req.covered.size()},
        ByteView{req.sig.data(), req.sig.size()});
    if (req.ok) {
      seq_cache.insert(req.signer, req.covered,
                       ByteView{req.sig.data(), req.sig.size()},
                       req.extended);
    }
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch[i].ok, requests[i].ok) << "item " << i;
    EXPECT_EQ(batch[i].cached, requests[i].cached) << "item " << i;
  }
  EXPECT_EQ(batch_cache.hits(), seq_cache.hits());
  EXPECT_EQ(batch_cache.misses(), seq_cache.misses());
  EXPECT_EQ(batch_cache.size(), seq_cache.size());
}

TEST(HashBackendSelection, UnknownAndUnsupportedNamesRejected) {
  EXPECT_FALSE(select_hash_backend("sha3"));
  EXPECT_TRUE(select_hash_backend("scalar"));
  EXPECT_STREQ(hash_backend().name, "scalar");
  EXPECT_TRUE(select_hash_backend("auto"));
  // Scalar is always in the supported set.
  bool has_scalar = false;
  for (const HashBackend* backend : supported_hash_backends()) {
    if (std::string(backend->name) == "scalar") has_scalar = true;
  }
  EXPECT_TRUE(has_scalar);
}

}  // namespace
}  // namespace dr::crypto
