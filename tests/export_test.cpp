#include "hist/export.h"

#include <gtest/gtest.h>

#include "ba/signed_value.h"
#include "test_util.h"

namespace dr::hist {
namespace {

History sample_history() {
  History h;
  h.set_initial(0, to_bytes("v"));
  h.record(1, Edge{0, 1, to_bytes("abc")});
  h.record(1, Edge{0, 2, to_bytes("de")});
  h.record(2, Edge{1, 2, to_bytes("x")});
  return h;
}

TEST(Export, TextContainsEveryEdge) {
  const std::string text = to_text(sample_history());
  EXPECT_NE(text.find("phase 0: -> p0 (input)"), std::string::npos);
  EXPECT_NE(text.find("phase 1:"), std::string::npos);
  EXPECT_NE(text.find("p0 -> p1  <3 bytes>"), std::string::npos);
  EXPECT_NE(text.find("p0 -> p2  <2 bytes>"), std::string::npos);
  EXPECT_NE(text.find("phase 2:"), std::string::npos);
  EXPECT_NE(text.find("p1 -> p2  <1 bytes>"), std::string::npos);
}

TEST(Export, DotIsWellFormed) {
  const std::string dot = to_dot(sample_history());
  EXPECT_EQ(dot.rfind("digraph history {", 0), 0u);
  EXPECT_NE(dot.find("subgraph cluster_phase1"), std::string::npos);
  EXPECT_NE(dot.find("\"p0@1\" -> \"p1@2\""), std::string::npos);
  EXPECT_NE(dot.find("\"p1@2\" -> \"p2@3\""), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Export, ChainPrinterDecodesRealTraffic) {
  const auto result = ba::run_scenario(*ba::find_protocol("alg1"),
                                       ba::BAConfig{5, 2, 0, 1}, 1, {},
                                       /*record_history=*/true);
  const std::string text = to_text(result.history,
                                   ba::chain_label_printer());
  // Phase 1: the transmitter's single-signature chains.
  EXPECT_NE(text.find("v=1 sig[0]"), std::string::npos);
  // Phase 2: relays extend with their own signature.
  EXPECT_NE(text.find("v=1 sig[0,"), std::string::npos);
  const std::string dot = to_dot(result.history,
                                 ba::chain_label_printer());
  EXPECT_NE(dot.find("v=1 sig[0]"), std::string::npos);
}

TEST(Export, QuotesAreEscapedInDot) {
  History h;
  h.record(1, Edge{0, 1, to_bytes("x")});
  const std::string dot =
      to_dot(h, [](ByteView) { return std::string("say \"hi\""); });
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(Export, EmptyHistory) {
  History h;
  EXPECT_EQ(to_text(h), "");
  const std::string dot = to_dot(h);
  EXPECT_NE(dot.find("digraph history"), std::string::npos);
}

}  // namespace
}  // namespace dr::hist
