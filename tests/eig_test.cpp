#include "ba/eig.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::crash;
using test::equivocator;
using test::expect_agreement;
using test::silent;

class EigSweep : public ::testing::TestWithParam<
                     std::tuple<std::size_t, std::size_t, Value>> {};

TEST_P(EigSweep, FailureFree) {
  const auto& [n, t, value] = GetParam();
  expect_agreement(*find_protocol("eig"), BAConfig{n, t, 0, value}, 1);
}

TEST_P(EigSweep, SilentFaults) {
  const auto& [n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(n - 1 - i)));
  }
  expect_agreement(*find_protocol("eig"), BAConfig{n, t, 0, value}, 1,
                   faults);
}

TEST_P(EigSweep, RandomByzantine) {
  const auto& [n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<ScenarioFault> faults;
    for (std::size_t i = 0; i < t; ++i) {
      faults.push_back(chaos(static_cast<ProcId>(1 + i), seed * 77 + i));
    }
    expect_agreement(*find_protocol("eig"), BAConfig{n, t, 0, value}, seed,
                     faults);
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<EigSweep::ParamType>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
         std::to_string(std::get<1>(info.param)) + "_v" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EigSweep,
    ::testing::Values(std::tuple{4u, 1u, Value{0}},
                      std::tuple{4u, 1u, Value{1}},
                      std::tuple{5u, 1u, Value{3}},
                      std::tuple{7u, 2u, Value{0}},
                      std::tuple{7u, 2u, Value{1}},
                      std::tuple{8u, 2u, Value{9}},
                      std::tuple{10u, 3u, Value{1}}),
    sweep_name);

TEST(Eig, EquivocatingTransmitterStillAgrees) {
  const BAConfig config{7, 2, 0, 0};
  const auto result = ba::run_scenario(*find_protocol("eig"), config, 1,
                                       {equivocator({1, 2, 3})});
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement);
}

TEST(Eig, TwoFacedLastRoundRelayStillAgrees) {
  // A faulty relay plus an equivocating transmitter.
  const BAConfig config{7, 2, 0, 0};
  const auto result = ba::run_scenario(
      *find_protocol("eig"), config, 1,
      {equivocator({1, 2, 3}), chaos(6, 9, 0.5)});
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement);
}

TEST(Eig, SupportsRequiresNGreaterThan3T) {
  EXPECT_TRUE(Eig::supports(BAConfig{4, 1, 0, 0}));
  EXPECT_FALSE(Eig::supports(BAConfig{3, 1, 0, 0}));
  EXPECT_FALSE(Eig::supports(BAConfig{6, 2, 0, 0}));
  EXPECT_TRUE(Eig::supports(BAConfig{7, 2, 0, 0}));
}

TEST(Eig, UnauthenticatedMessageCountExceedsCorollary1Bound) {
  // Corollary 1: any unauthenticated algorithm sends >= n(t+1)/4 messages
  // in some failure-free history. EIG's failure-free count must respect it.
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{4, 1},
                             {7, 2},
                             {10, 3}}) {
    const auto result = expect_agreement(*find_protocol("eig"),
                                         BAConfig{n, t, 0, 1}, 1);
    EXPECT_GE(static_cast<double>(result.metrics.messages_by_correct()),
              bounds::theorem1_signature_lower_bound(n, t))
        << "n=" << n << " t=" << t;
  }
}

TEST(Eig, CrashFaultMidProtocol) {
  const Protocol& protocol = *find_protocol("eig");
  const BAConfig config{7, 2, 0, 5};
  expect_agreement(protocol, config, 1,
                   {crash(protocol, 3, 2), crash(protocol, 5, 3)});
}

TEST(Eig, PhaseCountIsTPlusOne) {
  const auto result =
      expect_agreement(*find_protocol("eig"), BAConfig{7, 2, 0, 1}, 1);
  EXPECT_LE(result.metrics.last_active_phase(), 3u);  // t+1 rounds
}

}  // namespace
}  // namespace dr::ba
