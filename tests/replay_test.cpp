#include "ba/replay.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::silent;

class ReplayConformance
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t,
                                                 std::size_t>> {};

TEST_P(ReplayConformance, FailureFreeHistoriesConform) {
  const auto& [name, n, t] = GetParam();
  const Protocol& protocol = *find_protocol(name);
  const BAConfig config{n, t, 0, 1};
  ASSERT_TRUE(protocol.supports(config));
  const auto result = run_scenario(protocol, config, 5, {}, true);
  const auto report = validate_correctness(result.history, protocol, config,
                                           result.faulty, 5);
  EXPECT_TRUE(report.conforming) << name;
  EXPECT_TRUE(report.violations.empty());
}

TEST_P(ReplayConformance, CorrectProcessorsConformDespiteFaultyPeers) {
  const auto& [name, n, t] = GetParam();
  if (t == 0) GTEST_SKIP();
  const Protocol& protocol = *find_protocol(name);
  const BAConfig config{n, t, 0, 1};
  ASSERT_TRUE(protocol.supports(config));
  std::vector<ScenarioFault> faults{chaos(static_cast<ProcId>(n - 1), 17)};
  const auto result = run_scenario(protocol, config, 5, faults, true);
  const auto report = validate_correctness(result.history, protocol, config,
                                           result.faulty, 5);
  EXPECT_TRUE(report.conforming) << name;
}

std::string sweep_name(
    const ::testing::TestParamInfo<ReplayConformance::ParamType>& info) {
  std::string tag = std::get<0>(info.param) + "_n" +
                    std::to_string(std::get<1>(info.param)) + "_t" +
                    std::to_string(std::get<2>(info.param));
  for (char& c : tag) {
    if (c == '-') c = '_';
  }
  return tag;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ReplayConformance,
    ::testing::Values(std::tuple{std::string("dolev-strong"), 7u, 2u},
                      std::tuple{std::string("dolev-strong-relay"), 9u, 2u},
                      std::tuple{std::string("eig"), 7u, 2u},
                      std::tuple{std::string("alg1"), 7u, 3u},
                      std::tuple{std::string("alg1-mv"), 7u, 3u},
                      std::tuple{std::string("alg2"), 7u, 3u}),
    sweep_name);

TEST(Replay, FlagsAFaultyProcessorCheckedAsCorrect) {
  // Run with a silent fault but *claim* everyone is correct: the validator
  // must flag the silent processor (it fails to send what the rule says).
  const Protocol& protocol = *find_protocol("dolev-strong");
  const BAConfig config{7, 2, 0, 1};
  const auto result = run_scenario(protocol, config, 5, {silent(3)}, true);
  std::vector<bool> all_correct(config.n, false);
  const auto report = validate_correctness(result.history, protocol, config,
                                           all_correct, 5);
  EXPECT_FALSE(report.conforming);
  ASSERT_FALSE(report.violations.empty());
  bool flagged_3 = false;
  for (const auto& v : report.violations) {
    if (v.processor == 3) flagged_3 = true;
  }
  EXPECT_TRUE(flagged_3);
}

TEST(Replay, FlagsTamperedHistory) {
  const Protocol& protocol = *find_protocol("alg1");
  const BAConfig config{5, 2, 0, 1};
  auto result = run_scenario(protocol, config, 5, {}, true);
  // Tamper: inject an edge the correctness rule never sent.
  result.history.record(2, hist::Edge{1, 2, to_bytes("forged")});
  const auto report = validate_correctness(result.history, protocol, config,
                                           result.faulty, 5);
  EXPECT_FALSE(report.conforming);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().processor, 1u);
  EXPECT_EQ(report.violations.front().phase, 2u);
}

TEST(Replay, FlagsRemovedEdge) {
  // Rebuild a history minus one correct edge: the sender no longer
  // conforms (it "failed to send").
  const Protocol& protocol = *find_protocol("dolev-strong");
  const BAConfig config{5, 1, 0, 1};
  const auto result = run_scenario(protocol, config, 5, {}, true);
  hist::History pruned;
  pruned.set_initial(result.history.transmitter(),
                     *result.history.initial_value());
  bool dropped = false;
  for (hist::PhaseNum k = 1; k <= result.history.phases(); ++k) {
    for (const hist::Edge& e : result.history.phase(k).edges()) {
      if (!dropped && e.from == 0) {
        dropped = true;  // drop the transmitter's first send
        continue;
      }
      pruned.record(k, e);
    }
  }
  ASSERT_TRUE(dropped);
  const auto report = validate_correctness(pruned, protocol, config,
                                           result.faulty, 5);
  EXPECT_FALSE(report.conforming);
}

TEST(Replay, WrongSeedBreaksSignatureEquality) {
  // Replaying under a different master seed produces different signatures,
  // so conformance must fail — evidence that the validator really compares
  // bytes, not shapes.
  const Protocol& protocol = *find_protocol("alg1");
  const BAConfig config{5, 2, 0, 1};
  const auto result = run_scenario(protocol, config, 5, {}, true);
  const auto report = validate_correctness(result.history, protocol, config,
                                           result.faulty, /*seed=*/6);
  EXPECT_FALSE(report.conforming);
}

}  // namespace
}  // namespace dr::ba
