#include "ba/phase_king.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::crash;
using test::equivocator;
using test::expect_agreement;
using test::silent;

class PhaseKingSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, Value>> {};

TEST_P(PhaseKingSweep, FailureFree) {
  const auto& [n, t, value] = GetParam();
  expect_agreement(*find_protocol("phase-king"), BAConfig{n, t, 0, value},
                   1);
}

TEST_P(PhaseKingSweep, SilentFaults) {
  const auto& [n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(n - 1 - i)));
  }
  expect_agreement(*find_protocol("phase-king"), BAConfig{n, t, 0, value},
                   1, faults);
}

TEST_P(PhaseKingSweep, FaultyKingsStillAgree) {
  const auto& [n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  // Make t of the t+1 kings Byzantine: only one honest king phase remains,
  // which is exactly the algorithm's tolerance.
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(chaos(static_cast<ProcId>(1 + i), 31 * i + 5, 0.5));
  }
  expect_agreement(*find_protocol("phase-king"), BAConfig{n, t, 0, value},
                   1, faults);
}

TEST_P(PhaseKingSweep, RandomByzantine) {
  const auto& [n, t, value] = GetParam();
  if (t == 0) GTEST_SKIP();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<ScenarioFault> faults;
    for (std::size_t i = 0; i < t; ++i) {
      const ProcId id = (i % 2 == 0) ? static_cast<ProcId>(1 + i)
                                     : static_cast<ProcId>(n - 1 - i);
      faults.push_back(chaos(id, seed * 101 + i, 0.4));
    }
    std::set<ProcId> seen;
    std::vector<ScenarioFault> unique;
    for (auto& f : faults) {
      if (seen.insert(f.id).second) unique.push_back(std::move(f));
    }
    expect_agreement(*find_protocol("phase-king"), BAConfig{n, t, 0, value},
                     seed, unique);
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<PhaseKingSweep::ParamType>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
         std::to_string(std::get<1>(info.param)) + "_v" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PhaseKingSweep,
    ::testing::Values(std::tuple{5u, 1u, Value{0}},
                      std::tuple{5u, 1u, Value{1}},
                      std::tuple{9u, 2u, Value{7}},
                      std::tuple{13u, 3u, Value{1}},
                      std::tuple{21u, 5u, Value{0xabcdefULL}},
                      std::tuple{41u, 10u, Value{1}}),
    sweep_name);

TEST(PhaseKing, EquivocatingTransmitter) {
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{9, 2},
                             {21, 5}}) {
    std::set<ProcId> ones;
    for (ProcId q = 1; q < n; q += 2) ones.insert(q);
    const auto result = ba::run_scenario(*find_protocol("phase-king"),
                                         BAConfig{n, t, 0, 0}, 1,
                                         {equivocator(ones)});
    EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement);
  }
}

TEST(PhaseKing, UnauthenticatedMessageCountRespectsCorollary1) {
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{21, 5},
                             {41, 10},
                             {85, 21}}) {
    const auto result = expect_agreement(*find_protocol("phase-king"),
                                         BAConfig{n, t, 0, 1}, 1);
    EXPECT_GE(static_cast<double>(result.metrics.messages_by_correct()),
              bounds::theorem1_signature_lower_bound(n, t))
        << "n=" << n;
    EXPECT_EQ(result.metrics.signatures_by_correct(), 0u);  // oral messages
  }
}

TEST(PhaseKing, PhaseCountIsLinearInT) {
  const auto result = expect_agreement(*find_protocol("phase-king"),
                                       BAConfig{21, 5, 0, 1}, 1);
  EXPECT_LE(result.metrics.last_active_phase(), 2 * 5 + 3);
}

TEST(PhaseKing, SupportsRequiresNGreaterThan4T) {
  EXPECT_TRUE(PhaseKing::supports(BAConfig{5, 1, 0, 1}));
  EXPECT_FALSE(PhaseKing::supports(BAConfig{4, 1, 0, 1}));
  EXPECT_FALSE(PhaseKing::supports(BAConfig{8, 2, 0, 1}));
  EXPECT_TRUE(PhaseKing::supports(BAConfig{9, 2, 0, 1}));
}

TEST(PhaseKing, CrashMidProtocol) {
  const Protocol& protocol = *find_protocol("phase-king");
  const BAConfig config{13, 3, 0, 5};
  expect_agreement(protocol, config, 1,
                   {crash(protocol, 2, 4), crash(protocol, 7, 7),
                    crash(protocol, 11, 2)});
}

}  // namespace
}  // namespace dr::ba
