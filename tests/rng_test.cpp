#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dr {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values show up in 500 draws
}

TEST(Xoshiro256, RangeSingleton) {
  Xoshiro256 rng(11);
  EXPECT_EQ(rng.range(42, 42), 42u);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Xoshiro256, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}

TEST(Xoshiro256, BytesLength) {
  Xoshiro256 rng(19);
  EXPECT_TRUE(rng.bytes(0).empty());
  EXPECT_EQ(rng.bytes(1).size(), 1u);
  EXPECT_EQ(rng.bytes(7).size(), 7u);
  EXPECT_EQ(rng.bytes(64).size(), 64u);
}

TEST(Xoshiro256, UniformityChiSquaredSmoke) {
  // 8 buckets, 8000 draws: each bucket should land near 1000.
  Xoshiro256 rng(23);
  std::size_t buckets[8] = {};
  for (int i = 0; i < 8000; ++i) ++buckets[rng.below(8)];
  for (std::size_t b : buckets) {
    EXPECT_GT(b, 850u);
    EXPECT_LT(b, 1150u);
  }
}

}  // namespace
}  // namespace dr
