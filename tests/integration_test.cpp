// Cross-protocol property sweep: every protocol, under every adversary mix
// we implement, must satisfy both Byzantine Agreement conditions, and its
// failure-free cost must respect the paper's bounds where a closed form is
// stated.
#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::ProcId;
using ba::Protocol;
using ba::ScenarioFault;
using ba::Value;
using test::chaos;
using test::crash;
using test::equivocator;
using test::silent;

struct Case {
  std::string label;
  Protocol protocol;
  std::size_t n;
  std::size_t t;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  auto add = [&](const Protocol& p, std::size_t n, std::size_t t) {
    cases.push_back(Case{p.name + "_n" + std::to_string(n) + "_t" +
                             std::to_string(t),
                         p, n, t});
  };
  add(*ba::find_protocol("dolev-strong"), 7, 2);
  add(*ba::find_protocol("dolev-strong"), 12, 3);
  add(*ba::find_protocol("dolev-strong-relay"), 12, 2);
  add(*ba::find_protocol("eig"), 7, 2);
  add(*ba::find_protocol("eig"), 10, 3);
  add(*ba::find_protocol("phase-king"), 13, 3);
  add(*ba::find_protocol("phase-king"), 33, 8);
  add(*ba::find_protocol("alg1"), 7, 3);
  add(*ba::find_protocol("alg1"), 11, 5);
  add(*ba::find_protocol("alg2"), 7, 3);
  add(ba::make_alg3_protocol(3), 25, 2);
  add(ba::make_alg3_protocol(6), 40, 3);
  add(ba::make_alg5_protocol(3), 30, 1);
  add(ba::make_alg5_protocol(3), 48, 2);
  add(ba::make_alg5_protocol(7), 70, 2);
  add(*ba::find_protocol("alg1-mv"), 11, 5);
  add(*ba::find_protocol("alg2-mv"), 7, 3);
  add(ba::make_alg3_mv_protocol(3), 25, 2);
  add(ba::make_alg5_mv_protocol(3), 48, 2);
  add(ba::make_alg5_ungated_protocol(3), 48, 2);
  return cases;
}

class ProtocolProperty : public ::testing::TestWithParam<Case> {};

TEST_P(ProtocolProperty, FailureFreeBothValues) {
  const Case& c = GetParam();
  for (Value v : {Value{0}, Value{1}}) {
    BAConfig config{c.n, c.t, 0, v};
    if (!c.protocol.supports(config)) continue;
    test::expect_agreement(c.protocol, config, 1);
  }
}

TEST_P(ProtocolProperty, SilentFaultSweepOverPositions) {
  const Case& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 1};
  if (!c.protocol.supports(config)) GTEST_SKIP();
  // Slide a window of t silent faults across the id space.
  for (std::size_t start = 1; start + c.t <= c.n; start += (c.n / 5) + 1) {
    std::vector<ScenarioFault> faults;
    for (std::size_t i = 0; i < c.t; ++i) {
      faults.push_back(silent(static_cast<ProcId>(start + i)));
    }
    test::expect_agreement(c.protocol, config, 1, faults);
  }
}

TEST_P(ProtocolProperty, CrashFaultsAtVariousPhases) {
  const Case& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 1};
  if (!c.protocol.supports(config)) GTEST_SKIP();
  const sim::PhaseNum total = c.protocol.steps(config);
  for (sim::PhaseNum when : {sim::PhaseNum{2}, total / 2, total}) {
    std::vector<ScenarioFault> faults;
    for (std::size_t i = 0; i < c.t; ++i) {
      faults.push_back(crash(c.protocol,
                             static_cast<ProcId>(1 + i * (c.n - 2) / std::max<std::size_t>(c.t, 1)),
                             when + static_cast<sim::PhaseNum>(i)));
    }
    // Deduplicate fault ids (the spread formula can collide for small n).
    std::set<ProcId> seen;
    std::vector<ScenarioFault> unique;
    for (auto& f : faults) {
      if (seen.insert(f.id).second) unique.push_back(std::move(f));
    }
    test::expect_agreement(c.protocol, config, 1, unique);
  }
}

TEST_P(ProtocolProperty, RandomByzantineSeeds) {
  const Case& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 1};
  if (!c.protocol.supports(config)) GTEST_SKIP();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<ScenarioFault> faults;
    for (std::size_t i = 0; i < c.t; ++i) {
      // Mix positions: low ids (actives / relays) and high ids (passives).
      const ProcId id = (i % 2 == 0)
                            ? static_cast<ProcId>(1 + i)
                            : static_cast<ProcId>(c.n - 1 - i);
      faults.push_back(chaos(id, seed * 997 + i, 0.25));
    }
    std::set<ProcId> seen;
    std::vector<ScenarioFault> unique;
    for (auto& f : faults) {
      if (seen.insert(f.id).second) unique.push_back(std::move(f));
    }
    test::expect_agreement(c.protocol, config, seed, unique);
  }
}

TEST_P(ProtocolProperty, FaultyTransmitterAgreementOnly) {
  const Case& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 0};
  if (!c.protocol.supports(config)) GTEST_SKIP();
  if (c.t < 1) GTEST_SKIP();
  // Equivocating transmitter splitting the processors in half.
  std::set<ProcId> ones;
  for (ProcId q = 1; q < c.n; q += 2) ones.insert(q);
  const auto result =
      ba::run_scenario(c.protocol, config, 1, {equivocator(ones)});
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 0).agreement)
      << c.label;
}

TEST_P(ProtocolProperty, DelayedEchoAdversary) {
  // Stale replays must bounce off the phase-stamped acceptance rules.
  const Case& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 1};
  if (!c.protocol.supports(config)) GTEST_SKIP();
  if (c.t < 1) GTEST_SKIP();
  for (sim::PhaseNum delay : {sim::PhaseNum{1}, sim::PhaseNum{3}}) {
    test::expect_agreement(c.protocol, config, 1,
                           {test::delayed_echo(
                               static_cast<ProcId>(c.n - 1), delay)});
  }
}

TEST_P(ProtocolProperty, DeterministicAcrossRuns) {
  const Case& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 1};
  if (!c.protocol.supports(config)) GTEST_SKIP();
  const auto a = ba::run_scenario(c.protocol, config, 7, {}, true);
  const auto b = ba::run_scenario(c.protocol, config, 7, {}, true);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_TRUE(a.history == b.history);
  EXPECT_EQ(a.metrics.messages_by_correct(),
            b.metrics.messages_by_correct());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolProperty,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& param_info) {
                           std::string tag = param_info.param.label;
                           for (char& ch : tag) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return tag;
                         });

TEST_P(ProtocolProperty, MetricsAgreeWithRecordedHistory) {
  // Two independent accounting paths — the metrics counters and the
  // recorded history — must agree on the number of messages sent by
  // correct processors.
  const Case& c = GetParam();
  const BAConfig config{c.n, c.t, 0, 1};
  if (!c.protocol.supports(config)) GTEST_SKIP();
  std::vector<ScenarioFault> faults;
  if (c.t >= 1) faults.push_back(silent(static_cast<ProcId>(c.n - 1)));
  const auto result = ba::run_scenario(c.protocol, config, 1, faults, true);
  const auto counted = result.history.count_edges(
      [&](const hist::Edge& e) { return !result.faulty[e.from]; });
  EXPECT_EQ(counted, result.metrics.messages_by_correct()) << c.label;
}

TEST(CrossProtocol, MessageOrderingMatchesTheory) {
  // At large n and small t the paper's ordering must emerge:
  // alg5 (O(n+t^2)) < dolev-strong-relay (O(nt)) < dolev-strong (O(n^2)).
  // The alg5 constants (activation + chain + report per tree, plus the
  // per-block Algorithm-4 exchanges) put the crossover around n ~ 300 for
  // t = 2, s = 15.
  const std::size_t n = 400;
  const std::size_t t = 2;
  const auto a5 = test::expect_agreement(ba::make_alg5_protocol(15),
                                         BAConfig{n, t, 0, 1}, 1);
  const auto rel = test::expect_agreement(
      *ba::find_protocol("dolev-strong-relay"), BAConfig{n, t, 0, 1}, 1);
  const auto bro = test::expect_agreement(*ba::find_protocol("dolev-strong"),
                                          BAConfig{n, t, 0, 1}, 1);
  EXPECT_LT(a5.metrics.messages_by_correct(),
            rel.metrics.messages_by_correct());
  EXPECT_LT(rel.metrics.messages_by_correct(),
            bro.metrics.messages_by_correct());
}

}  // namespace
}  // namespace dr
