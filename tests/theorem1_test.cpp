#include "bounds/theorem1.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr::bounds {
namespace {

TEST(SignaturePartners, ReadsChainsNotJustSenders) {
  // Build a tiny history by hand: 0 signs, 1 relays the 2-chain to 2.
  crypto::KeyRegistry registry(3, 1);
  crypto::Signer s0(&registry, {0});
  crypto::Signer s1(&registry, {1});
  const ba::SignedValue direct = ba::make_signed(1, s0, 0);
  const ba::SignedValue relayed = ba::extend(direct, s1, 1);

  hist::History h;
  h.record(1, hist::Edge{0, 1, encode(direct)});
  h.record(2, hist::Edge{1, 2, encode(relayed)});

  // Processor 2 receives signatures of both 0 and 1 (via the chain).
  EXPECT_EQ(signature_partners(h, 2), (std::set<ba::ProcId>{0, 1}));
  // Processor 0's signature reached 1 and 2.
  EXPECT_EQ(signature_partners(h, 0), (std::set<ba::ProcId>{1, 2}));
  // Processor 1 received 0's signature and its own reached 2.
  EXPECT_EQ(signature_partners(h, 1), (std::set<ba::ProcId>{0, 2}));
}

TEST(SignaturePartners, FallsBackToSenderForOpaquePayloads) {
  hist::History h;
  h.record(1, hist::Edge{0, 1, to_bytes("opaque")});
  EXPECT_EQ(signature_partners(h, 1), (std::set<ba::ProcId>{0}));
}

class PartnerBound
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t,
                                                 std::size_t>> {};

TEST_P(PartnerBound, CompliantAlgorithmsExchangeAtLeastTPlus1) {
  const auto& [name, n, t] = GetParam();
  const ba::Protocol* protocol = ba::find_protocol(name);
  ASSERT_NE(protocol, nullptr);
  const ba::BAConfig config{n, t, 0, 0};
  ASSERT_TRUE(protocol->supports(config));
  // Theorem 1: in H union G every processor's partner set exceeds t.
  EXPECT_GE(min_partner_set_size(*protocol, config, 1), t + 1)
      << name << " n=" << n << " t=" << t;
}

std::string sweep_name(
    const ::testing::TestParamInfo<PartnerBound::ParamType>& info) {
  std::string tag = std::get<0>(info.param) + "_n" +
                    std::to_string(std::get<1>(info.param)) + "_t" +
                    std::to_string(std::get<2>(info.param));
  for (char& c : tag) {
    if (c == '-') c = '_';
  }
  return tag;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, PartnerBound,
    ::testing::Values(std::tuple{std::string("dolev-strong"), 7u, 2u},
                      std::tuple{std::string("dolev-strong"), 10u, 3u},
                      std::tuple{std::string("dolev-strong-relay"), 10u, 2u},
                      std::tuple{std::string("alg1"), 5u, 2u},
                      std::tuple{std::string("alg1"), 9u, 4u},
                      std::tuple{std::string("alg2"), 7u, 3u}),
    sweep_name);

TEST(SignatureLowerBound, FailureFreeTotalsRespectTheorem1) {
  // The totals the theorem actually bounds: signatures sent by correct
  // processors in the worse of the two failure-free histories.
  for (const auto& [name, n, t] :
       {std::tuple{std::string("alg1"), 9ul, 4ul},
        std::tuple{std::string("alg2"), 9ul, 4ul},
        std::tuple{std::string("dolev-strong"), 10ul, 3ul}}) {
    const ba::Protocol& protocol = *ba::find_protocol(name);
    std::size_t worst = 0;
    for (ba::Value v : {ba::Value{0}, ba::Value{1}}) {
      const auto result =
          ba::run_scenario(protocol, ba::BAConfig{n, t, 0, v}, 1);
      worst = std::max(worst, result.metrics.signatures_by_correct());
    }
    EXPECT_GE(static_cast<double>(worst),
              theorem1_signature_lower_bound(n, t) / 2.0)
        << name;  // /2: the bound counts both H and G together
  }
}

TEST(SparseObserver, WorksFailureFree) {
  // The thrifty protocol does decide correctly when nobody misbehaves —
  // that is exactly why only the lower-bound argument exposes it.
  const ba::Protocol protocol = make_sparse_observer_protocol();
  for (ba::Value v : {ba::Value{0}, ba::Value{1}}) {
    const auto result =
        ba::run_scenario(protocol, ba::BAConfig{9, 2, 0, v}, 1);
    const auto check = sim::check_byzantine_agreement(result, 0, v);
    EXPECT_TRUE(check.agreement);
    EXPECT_TRUE(check.validity);
  }
}

TEST(SparseObserver, ObserverPartnerSetIsOnlyT) {
  const std::size_t n = 9;
  const std::size_t t = 2;
  const auto attack = run_theorem1_attack(n, t, 1);
  EXPECT_LE(attack.partner_set_size, t);
}

TEST(Theorem1Attack, TwoFacedCoalitionBreaksAgreement) {
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{9, 2},
                             {11, 3},
                             {13, 4}}) {
    const auto attack = run_theorem1_attack(n, t, 1);
    EXPECT_TRUE(attack.agreement_violated) << "n=" << n << " t=" << t;
    ASSERT_TRUE(attack.observer_decision.has_value());
    ASSERT_TRUE(attack.others_decision.has_value());
    EXPECT_EQ(*attack.observer_decision, 0u);  // the H world
    EXPECT_EQ(*attack.others_decision, 1u);    // the G world
  }
}

TEST(Theorem1Attack, CompliantAlgorithmTracesCannotBeReplayedLegitimately) {
  // Control experiment. The proof's coalition may only show the victim
  // messages it can actually produce, i.e. messages carrying coalition
  // signatures exclusively. For the sparse protocol that covers everything
  // the victim ever sees; for Dolev-Strong it does not — the H-world
  // messages that would convince the victim carry the (non-faulty)
  // transmitter's signature on 0, which the coalition cannot forge. This is
  // exactly why |A(p)| > t protects an algorithm.
  const std::size_t n = 9;
  const std::size_t t = 2;
  const ba::ProcId victim = static_cast<ba::ProcId>(n - 1);
  const std::set<ba::ProcId> coalition{1, 2};  // |coalition| = t

  // Sparse protocol: every H-message from the coalition to the victim is
  // self-contained (coalition signatures only) -> replayable.
  {
    const auto h = ba::run_scenario(make_sparse_observer_protocol(),
                                    ba::BAConfig{n, t, 0, 0}, 1, {}, true);
    for (ba::ProcId a : coalition) {
      for (const auto& [phase, sends] :
           adversary::trace_of(h.history, a)) {
        for (const auto& [to, payload] : sends) {
          if (to != victim) continue;
          hist::History tmp;
          tmp.record(1, hist::Edge{a, to, payload});
          for (ba::ProcId s : signature_partners(tmp, to)) {
            EXPECT_TRUE(coalition.contains(s));
          }
        }
      }
    }
  }

  // Dolev-Strong: the victim's H-world evidence includes the transmitter's
  // signature, which is outside the coalition -> not replayable.
  {
    const auto h = ba::run_scenario(*ba::find_protocol("dolev-strong"),
                                    ba::BAConfig{n, t, 0, 0}, 1, {}, true);
    bool needs_foreign_signature = false;
    for (ba::ProcId a : coalition) {
      for (const auto& [phase, sends] :
           adversary::trace_of(h.history, a)) {
        for (const auto& [to, payload] : sends) {
          if (to != victim) continue;
          hist::History tmp;
          tmp.record(1, hist::Edge{a, to, payload});
          for (ba::ProcId s : signature_partners(tmp, to)) {
            if (!coalition.contains(s)) needs_foreign_signature = true;
          }
        }
      }
    }
    EXPECT_TRUE(needs_foreign_signature);
  }
}

}  // namespace
}  // namespace dr::bounds
