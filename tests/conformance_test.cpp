// The conformance engine, end to end: clean sweeps at the paper's scales,
// profile constants, generator envelope, Theorem 1 floors, and the
// acceptance demo — a deliberately broken bound constant must yield a
// shrunk JSON reproducer that replays bit-deterministically.
#include "check/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "bounds/formulas.h"

namespace dr::check {
namespace {

TEST(Profiles, EncodePaperConstants) {
  const ba::BAConfig alg1{7, 3, 0, 1};
  const BoundProfile p1 = profile_for("alg1", alg1);
  EXPECT_EQ(p1.message_upper, bounds::alg1_message_upper_bound(3));
  EXPECT_EQ(p1.message_upper, 2u * 9 + 2 * 3);
  EXPECT_EQ(p1.phase_upper, 3u + 2);
  EXPECT_TRUE(p1.authenticated);
  EXPECT_EQ(p1.signature_floor,
            bounds::theorem1_signature_lower_bound_exact(7, 3));
  EXPECT_EQ(p1.partner_floor, 4u);

  const ba::BAConfig alg3{9, 2, 0, 1};
  const BoundProfile p3 = profile_for("alg3[s=3]", alg3);
  EXPECT_EQ(p3.message_upper,
            bounds::alg3_message_upper_bound_exact(9, 2, 3));
  EXPECT_EQ(p3.phase_upper, 2u + 2 * 3 + 3);

  // eig is unauthenticated: no Theorem 1 floors, implementation ceiling.
  const ba::BAConfig eig{7, 2, 0, 1};
  const BoundProfile pe = profile_for("eig", eig);
  EXPECT_FALSE(pe.authenticated);
  EXPECT_EQ(pe.partner_floor, 0u);
  EXPECT_EQ(pe.message_upper, 3u * 7 * 6);

  // Scaling distorts the thresholds (the broken-constant lever).
  OracleOptions broken;
  broken.message_scale = 0.5;
  EXPECT_EQ(profile_for("alg1", alg1, broken).message_upper,
            (2u * 9 + 2 * 3) / 2);
}

TEST(Generators, CasesStayInsideTheSupportsEnvelope) {
  Xoshiro256 rng(42);
  GenOptions options;
  for (int i = 0; i < 500; ++i) {
    const chaos::Scenario scenario = generate_case(rng, options);
    const std::optional<ba::Protocol> protocol =
        chaos::resolve_protocol(scenario.protocol);
    ASSERT_TRUE(protocol.has_value()) << scenario.protocol;
    EXPECT_TRUE(protocol->supports(scenario.config)) << scenario.protocol;
    EXPECT_LE(scenario.scripted.size(), scenario.config.t);
    std::set<ba::ProcId> ids;
    for (const chaos::ScriptedFault& fault : scenario.scripted) {
      EXPECT_TRUE(ids.insert(fault.id).second) << "duplicate scripted id";
      EXPECT_LT(fault.id, scenario.config.n);
      if (fault.kind == chaos::ScriptedKind::kEquivocate) {
        EXPECT_EQ(fault.id, scenario.config.transmitter);
      }
    }
  }
}

TEST(SignatureFloors, HoldForAuthenticatedRegistryProtocols) {
  const auto floors_of = [](std::string_view name, std::size_t n,
                            std::size_t t) {
    const std::optional<ba::Protocol> protocol =
        chaos::resolve_protocol(name);
    EXPECT_TRUE(protocol.has_value());
    return check_signature_floors(*protocol, ba::BAConfig{n, t, 0, 0}, 1);
  };
  EXPECT_TRUE(floors_of("alg1", 5, 2).empty());
  EXPECT_TRUE(floors_of("alg2", 7, 3).empty());
  EXPECT_TRUE(floors_of("dolev-strong", 7, 2).empty());
  EXPECT_TRUE(floors_of("alg3[s=2]", 8, 2).empty());
}

TEST(Engine, CleanSweepAtPaperScales) {
  EngineOptions options;
  options.cases = 120;
  options.seed = 3;
  options.differential = false;
  ConformanceEngine engine(options);
  const ConformanceStats stats = engine.run();
  EXPECT_EQ(stats.cases, 120u);
  EXPECT_GT(stats.checked, 80u);
  EXPECT_GT(stats.signature_shapes_checked, 10u);
  EXPECT_TRUE(stats.findings.empty())
      << stats.findings.front().reproducer_json;
}

TEST(Engine, DifferentialSweepAgreesAcrossBackends) {
  EngineOptions options;
  options.cases = 25;
  options.seed = 11;
  ConformanceEngine engine(options);
  const ConformanceStats stats = engine.run();
  EXPECT_TRUE(stats.findings.empty())
      << stats.findings.front().reproducer_json;
}

TEST(Engine, BrokenConstantYieldsShrunkDeterministicReproducer) {
  // The acceptance demo: tighten every message bound 20x — as if
  // 2t^2+2t had been mis-transcribed — and require the engine to find
  // it, shrink it to a 1-minimal case, and emit JSON that replays to the
  // identical violation list.
  EngineOptions options;
  options.cases = 40;
  options.seed = 1;
  options.differential = false;
  options.oracles.message_scale = 0.05;
  ConformanceEngine engine(options);
  const ConformanceStats stats = engine.run();
  ASSERT_FALSE(stats.findings.empty());

  for (const chaos::Finding& finding : stats.findings) {
    // Clean-run overshoot needs no faults at all, so ddmin must have
    // stripped every scripted fault and every transport rule.
    EXPECT_TRUE(finding.scenario.scripted.empty());
    EXPECT_TRUE(finding.scenario.rules.empty());

    // The reproducer round-trips...
    std::vector<std::string> recorded;
    std::string error;
    const std::optional<chaos::Scenario> loaded =
        chaos::scenario_from_json(finding.reproducer_json, &recorded,
                                  &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(*loaded, finding.scenario);
    EXPECT_EQ(recorded, finding.violations);

    // ...and replays to the identical violation list on a fresh engine.
    ConformanceEngine replayer(options);
    const CaseReport replayed = replayer.evaluate(*loaded);
    EXPECT_TRUE(replayed.within_budget);
    EXPECT_EQ(replayed.violations, finding.violations);

    // At the paper's true scales the same case is conforming.
    EngineOptions clean = options;
    clean.oracles = OracleOptions{};
    ConformanceEngine honest(clean);
    EXPECT_TRUE(honest.evaluate(*loaded).violations.empty());
  }
}

}  // namespace
}  // namespace dr::check
