// The acceptance harness of the net runtime: every registry protocol
// (plus the parameterised alg3/alg5 families) must produce identical
// decisions and identical paper-level accounting on the synchronous
// simulator, the in-process transport and the TCP-loopback transport —
// under no faults, scripted Byzantine faults, and transport fault plans —
// with message counts inside the paper's closed-form budgets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/harness.h"
#include "sim/chaos.h"
#include "test_util.h"

namespace dr::net {
namespace {

struct Case {
  std::string name;      // chaos-resolvable protocol name (budgets_for)
  ba::Protocol protocol;
  ba::BAConfig config;
};

std::vector<Case> parity_cases() {
  std::vector<Case> cases;
  const auto add = [&cases](const std::string& name,
                            const ba::BAConfig& config) {
    const std::optional<ba::Protocol> protocol =
        chaos::resolve_protocol(name);
    ASSERT_TRUE(protocol.has_value()) << name;
    ASSERT_TRUE(protocol->supports(config))
        << name << " n=" << config.n << " t=" << config.t;
    cases.push_back(Case{name, *protocol, config});
  };
  // (n=7, t=2) for the protocols that admit it...
  add("dolev-strong", {7, 2, 0, 1});
  add("dolev-strong-relay", {7, 2, 0, 1});
  add("eig", {7, 2, 0, 1});
  add("alg3[s=2]", {7, 2, 0, 1});
  add("alg3-mv[s=2]", {7, 2, 0, 5});
  add("alg5[s=2]", {7, 2, 0, 1});
  add("alg5-mv[s=2]", {7, 2, 0, 3});
  // ... (n=9, t=4) for the n = 2t+1 family, (n=9, t=2) for phase-king.
  add("alg1", {9, 4, 0, 1});
  add("alg1-mv", {9, 4, 0, 6});
  add("alg2", {9, 4, 0, 1});
  add("alg2-mv", {9, 4, 0, 6});
  add("alg5[s=2]", {9, 4, 0, 1});
  add("phase-king", {9, 2, 0, 1});
  return cases;
}

void expect_parity(const Case& c, std::uint64_t seed,
                   const std::vector<ba::ScenarioFault>& faults = {},
                   const std::vector<sim::FaultRule>& rules = {}) {
  const ParityReport report =
      check_parity(c.protocol, c.config, seed, faults, rules);
  EXPECT_TRUE(report.ok) << c.name << " n=" << c.config.n
                         << " t=" << c.config.t;
  for (const std::string& mismatch : report.mismatches) {
    ADD_FAILURE() << c.name << ": " << mismatch;
  }

  // The backends agreed; now hold the shared numbers against the paper.
  const chaos::Budgets budgets = chaos::budgets_for(c.name, c.config);
  if (budgets.messages.has_value() && faults.empty() && rules.empty()) {
    EXPECT_LE(
        static_cast<double>(report.tcp.run.metrics.messages_by_correct()),
        *budgets.messages)
        << c.name << ": message budget exceeded on the wire";
  }
  // No endpoint may have been declared omission-faulty in a fault-free
  // barrier schedule: that would mean the synchronizer lost lock-step.
  if (faults.empty() && rules.empty()) {
    EXPECT_TRUE(report.inprocess.sync.omission_faulty.empty()) << c.name;
    EXPECT_TRUE(report.tcp.sync.omission_faulty.empty()) << c.name;
    EXPECT_EQ(report.inprocess.sync.frames.rejected(), 0u) << c.name;
    EXPECT_EQ(report.tcp.sync.frames.rejected(), 0u) << c.name;
  }
  // Clean runs on a healthy mesh: no connection ever died, no frame was
  // truncated, no send failed, no watchdog fired. These counters are the
  // crash-tolerance machinery's "do no harm" contract — they must stay
  // exactly zero until a fault plan or churn rule actually severs links.
  for (const NetRunResult* net : {&report.inprocess, &report.tcp}) {
    EXPECT_FALSE(net->watchdog_fired) << c.name;
    EXPECT_EQ(net->sync.disconnects, 0u) << c.name;
    EXPECT_EQ(net->sync.truncated_frames, 0u) << c.name;
    EXPECT_EQ(net->sync.send_errors, 0u) << c.name;
    EXPECT_EQ(net->sync.reconnected_peers, 0u) << c.name;
    EXPECT_EQ(net->sync.link.disconnects, 0u) << c.name;
    EXPECT_EQ(net->sync.link.reconnect_attempts, 0u) << c.name;
    EXPECT_EQ(net->run.metrics.net_disconnects(), 0u) << c.name;
  }
}

TEST(NetParity, FaultFreeAcrossAllProtocols) {
  for (const Case& c : parity_cases()) {
    SCOPED_TRACE(c.name);
    expect_parity(c, /*seed=*/1);
  }
}

TEST(NetParity, WithScriptedByzantineFaults) {
  for (const Case& c : parity_cases()) {
    SCOPED_TRACE(c.name);
    // One silent processor and one seeded random-Byzantine processor —
    // both deterministic, so all three backends must still agree.
    std::vector<ba::ScenarioFault> faults;
    faults.push_back(test::silent(1));
    if (c.config.t >= 2) faults.push_back(test::chaos(2, 99));
    expect_parity(c, /*seed=*/3, faults);
  }
}

TEST(NetParity, WithTransportFaultPlans) {
  // Drop, duplicate and corrupt rules flow through the same submission
  // seam on every backend, so decisions, metrics and the perturbed-set
  // accounting must stay identical.
  const std::vector<sim::FaultRule> rules = {
      {sim::FaultKind::kDrop, 1, 2, 1},
      {sim::FaultKind::kDuplicate, 3, sim::kAnyProc, 2},
      {sim::FaultKind::kCorrupt, 0, 4, sim::kAnyPhase},
  };
  for (const Case& c : parity_cases()) {
    SCOPED_TRACE(c.name);
    expect_parity(c, /*seed=*/5, {}, rules);
  }
}

TEST(NetParity, UnauthenticatedProtocolsUnderScriptedFaultPlans) {
  // eig and phase-king are the unauthenticated registry members — their
  // vote-counting paths (EIG tree resolve, king tie-break) are the most
  // sensitive to delivery-order divergence, so pin them explicitly under
  // the plan kinds the generic sweep above leaves out: transport-level
  // crash (kCrash silences a processor mid-run) and receive omission
  // (kOmitReceive starves one edge), layered over scripted Byzantine
  // processors.
  const std::vector<sim::FaultRule> plans[] = {
      {{sim::FaultKind::kCrash, 3, sim::kAnyProc, 2}},
      {{sim::FaultKind::kOmitReceive, sim::kAnyProc, 5, 3},
       {sim::FaultKind::kDrop, 1, 2, sim::kAnyPhase}},
  };
  for (const auto& [name, config] :
       {std::pair{std::string("eig"), ba::BAConfig{7, 2, 0, 1}},
        std::pair{std::string("phase-king"), ba::BAConfig{9, 2, 0, 1}}}) {
    const std::optional<ba::Protocol> protocol =
        chaos::resolve_protocol(name);
    ASSERT_TRUE(protocol.has_value());
    const Case c{name, *protocol, config};
    for (const std::vector<sim::FaultRule>& rules : plans) {
      SCOPED_TRACE(name + " rules=" + std::to_string(rules.size()));
      expect_parity(c, /*seed=*/13, {}, rules);
      // And with a scripted Byzantine processor in the mix: one crash
      // fault built through the same to_scenario_fault seam the
      // conformance generator draws from.
      std::vector<ba::ScenarioFault> faults;
      faults.push_back(test::crash(*protocol, 6, 2));
      expect_parity(c, /*seed=*/13, faults, rules);
    }
  }
}

TEST(NetParity, WireAccountingIsPlausible) {
  // frames_sent and wire_bytes are net-only counters (zero on sim). Every
  // payload message becomes exactly one frame, plus (phases-1) DONE
  // control frames per endpoint; wire bytes strictly exceed payload bytes.
  const Case c{"dolev-strong", *ba::find_protocol("dolev-strong"),
               {5, 1, 0, 1}};
  const ParityReport report = check_parity(c.protocol, c.config, 11);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.sim.metrics.frames_sent(), 0u);
  EXPECT_EQ(report.sim.metrics.wire_bytes_by_correct(), 0u);
  for (const NetRunResult* net : {&report.inprocess, &report.tcp}) {
    const sim::Metrics& metrics = net->run.metrics;
    const PhaseNum phases = c.protocol.steps(c.config);
    const std::size_t done_frames =
        c.config.n * (c.config.n - 1) * (phases - 1);
    EXPECT_EQ(metrics.frames_sent(),
              metrics.messages_total() + done_frames);
    EXPECT_GT(metrics.wire_bytes_by_correct(), metrics.bytes_by_correct());
  }
}

TEST(NetParity, ChaosSoakOnNetBackend) {
  // A short soak of random scenarios executed on the real runtime: the
  // watchdog's invariants must hold exactly as they do on the simulator.
  chaos::SoakOptions options;
  options.runs = 40;
  options.seed = 17;
  options.backend = chaos::Backend::kNet;
  const chaos::SoakStats stats = chaos::soak(options);
  EXPECT_EQ(stats.runs, 40u);
  EXPECT_TRUE(stats.findings.empty());
  EXPECT_GT(stats.checked, 0u);
}

TEST(NetParity, ChaosExecuteMatchesAcrossBackends) {
  // chaos::execute on both backends: identical decisions and identical
  // perturbed accounting for a scenario mixing scripted and plan faults.
  chaos::Scenario scenario;
  scenario.protocol = "dolev-strong";
  scenario.config = {6, 2, 0, 1};
  scenario.seed = 21;
  scenario.plan_seed = 22;
  scenario.scripted.push_back(
      chaos::ScriptedFault{chaos::ScriptedKind::kChaos, 3, 1, 5, 0.4});
  scenario.rules.push_back({sim::FaultKind::kDrop, 2, 1, 1});
  const chaos::Outcome sim_outcome =
      chaos::execute(scenario, chaos::Backend::kSim);
  const chaos::Outcome net_outcome =
      chaos::execute(scenario, chaos::Backend::kNet);
  EXPECT_EQ(sim_outcome.result.decisions, net_outcome.result.decisions);
  EXPECT_EQ(sim_outcome.perturbed, net_outcome.perturbed);
  EXPECT_EQ(sim_outcome.result.metrics.messages_by_correct(),
            net_outcome.result.metrics.messages_by_correct());
}

}  // namespace
}  // namespace dr::net
