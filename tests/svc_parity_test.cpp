// The daemon's acceptance harness: every registry protocol, submitted
// through the client API to a daemon whose endpoints are separate OS
// processes, must decide exactly what the synchronous simulator decides
// and report exactly the simulator's paper-level accounting — fault-free,
// under scripted Byzantine processors, and under transport fault plans.
// One comparator (net::compare_parity_runs) defines "identical" for both
// the threaded net runtime and the daemon, so daemon-vs-sim parity is the
// same theorem as net-vs-sim parity, extended across process boundaries.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/harness.h"
#include "sim/chaos.h"
#include "svc_test_util.h"

namespace dr::svc {
namespace {

struct Case {
  std::string label;
  SubmitRequest req;
};

/// The net_parity_test matrix, expressed as client submissions. Every
/// protocol that admits (n=7, t=2); the n = 2t+1 family at (9, 4);
/// phase-king at (9, 2). All fit one daemon of E = 9 endpoints.
std::vector<Case> parity_cases(std::uint64_t seed) {
  std::vector<Case> cases;
  const auto add = [&](const std::string& name, std::size_t n, std::size_t t,
                       Value value) {
    SubmitRequest req;
    req.protocol = name;
    req.config = {n, t, 0, value};
    req.seed = seed;
    cases.push_back({name, std::move(req)});
  };
  add("dolev-strong", 7, 2, 1);
  add("dolev-strong-relay", 7, 2, 1);
  add("eig", 7, 2, 1);
  add("alg3[s=2]", 7, 2, 1);
  add("alg3-mv[s=2]", 7, 2, 5);
  add("alg5[s=2]", 7, 2, 1);
  add("alg5-mv[s=2]", 7, 2, 3);
  add("alg1", 9, 4, 1);
  add("alg1-mv", 9, 4, 6);
  add("alg2", 9, 4, 1);
  add("alg2-mv", 9, 4, 6);
  add("alg5[s=2]", 9, 4, 1);
  add("phase-king", 9, 2, 1);
  return cases;
}

chaos::Scenario to_scenario(const SubmitRequest& req) {
  chaos::Scenario scenario;
  scenario.protocol = req.protocol;
  scenario.config = req.config;
  scenario.seed = req.seed;
  scenario.plan_seed = req.plan_seed;
  scenario.scripted = req.scripted;
  scenario.rules = req.rules;
  return scenario;
}

/// Holds one daemon response against the simulator running the identical
/// scenario: decisions, every paper-level metric, the perturbed sets, and
/// (for clean runs) hard-zero link health.
void expect_daemon_matches_sim(const Case& c, const DecisionResponse& resp) {
  ASSERT_TRUE(resp.ok) << c.label << ": " << resp.error;
  EXPECT_FALSE(resp.watchdog_fired) << c.label;

  const chaos::Outcome want =
      chaos::execute(to_scenario(c.req), chaos::Backend::kSim);

  sim::RunResult got;
  got.decisions = resp.decisions;
  got.faulty = resp.scripted_faulty;
  got.metrics = resp.metrics;

  net::ParityReport report;
  net::compare_parity_runs("svc", want.result, got, report);
  EXPECT_TRUE(report.ok) << c.label;
  for (const std::string& mismatch : report.mismatches) {
    ADD_FAILURE() << c.label << ": " << mismatch;
  }
  EXPECT_EQ(resp.perturbed, want.perturbed) << c.label;
  EXPECT_EQ(resp.scripted_faulty, want.scripted_faulty) << c.label;

  if (c.req.scripted.empty() && c.req.rules.empty()) {
    // Clean run on a healthy mesh: the crash-tolerance machinery must not
    // have stirred. Same "do no harm" gate net_parity_test applies.
    EXPECT_EQ(resp.sync.disconnects, 0u) << c.label;
    EXPECT_EQ(resp.sync.truncated_frames, 0u) << c.label;
    EXPECT_EQ(resp.sync.send_errors, 0u) << c.label;
    EXPECT_EQ(resp.sync.frames.rejected(), 0u) << c.label;
    EXPECT_TRUE(resp.sync.omission_faulty.empty()) << c.label;
    EXPECT_EQ(resp.metrics.net_disconnects(), 0u) << c.label;
    EXPECT_EQ(resp.metrics.net_reconnect_attempts(), 0u) << c.label;
  }
  // Frames flow on real sockets here, never on the simulator.
  EXPECT_GT(resp.metrics.frames_sent(), 0u) << c.label;
  EXPECT_EQ(want.result.metrics.frames_sent(), 0u);
}

/// Submits every case up front — the daemon runs them as concurrent
/// instances over one client connection — then collects and verifies.
void run_cases(test::SvcDaemon& daemon, std::vector<Case> cases) {
  std::vector<std::uint64_t> ids;
  ids.reserve(cases.size());
  for (const Case& c : cases) {
    const std::uint64_t id = daemon.client().submit(c.req);
    ASSERT_NE(id, 0u) << c.label;
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(cases[i].label);
    const auto resp =
        daemon.client().wait(ids[i], std::chrono::seconds(120));
    ASSERT_TRUE(resp.has_value()) << cases[i].label << ": timeout";
    expect_daemon_matches_sim(cases[i], *resp);
  }
}

TEST(SvcParity, FaultFreeAcrossAllProtocols) {
  test::SvcDaemon daemon(9);
  ASSERT_TRUE(daemon.up());
  run_cases(daemon, parity_cases(/*seed=*/1));
}

TEST(SvcParity, WithScriptedByzantineFaults) {
  test::SvcDaemon daemon(9);
  ASSERT_TRUE(daemon.up());
  std::vector<Case> cases;
  for (Case c : parity_cases(/*seed=*/3)) {
    chaos::ScriptedFault silent;
    silent.kind = chaos::ScriptedKind::kSilent;
    silent.id = 1;
    c.req.scripted.push_back(silent);
    if (c.req.config.t >= 2) {
      chaos::ScriptedFault chaotic;
      chaotic.kind = chaos::ScriptedKind::kChaos;
      chaotic.id = 2;
      chaotic.seed = 99 ^ 2;  // test_util's per-id derivation
      c.req.scripted.push_back(chaotic);
    }
    c.label += "+scripted";
    cases.push_back(std::move(c));
  }
  run_cases(daemon, std::move(cases));
}

TEST(SvcParity, WithTransportFaultPlans) {
  test::SvcDaemon daemon(9);
  ASSERT_TRUE(daemon.up());
  const std::vector<sim::FaultRule> rules = {
      {sim::FaultKind::kDrop, 1, 2, 1},
      {sim::FaultKind::kDuplicate, 3, sim::kAnyProc, 2},
      {sim::FaultKind::kCorrupt, 0, 4, sim::kAnyPhase},
  };
  std::vector<Case> cases;
  for (Case c : parity_cases(/*seed=*/5)) {
    c.req.plan_seed = 1;
    c.req.rules = rules;
    c.label += "+plan";
    cases.push_back(std::move(c));
  }
  run_cases(daemon, std::move(cases));
}

TEST(SvcParity, RejectsInvalidSubmissions) {
  test::SvcDaemon daemon(3);
  ASSERT_TRUE(daemon.up());

  SubmitRequest bad;
  bad.protocol = "no-such-protocol";
  bad.config = {3, 1, 0, 1};
  auto resp = daemon.client().run(bad, std::chrono::seconds(10));
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);
  EXPECT_NE(resp->error.find("unknown protocol"), std::string::npos);

  SubmitRequest too_big;
  too_big.protocol = "dolev-strong";
  too_big.config = {7, 2, 0, 1};  // n beyond the daemon's 3 endpoints
  resp = daemon.client().run(too_big, std::chrono::seconds(10));
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);

  SubmitRequest over_budget;
  over_budget.protocol = "dolev-strong";
  over_budget.config = {3, 1, 0, 1};
  chaos::ScriptedFault a, b;
  a.id = 1;
  b.id = 2;
  over_budget.scripted = {a, b};  // two scripted faults against t = 1
  resp = daemon.client().run(over_budget, std::chrono::seconds(10));
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);
}

TEST(SvcParity, MetricsDumpExposesServiceCounters) {
  test::SvcDaemon daemon(3);
  ASSERT_TRUE(daemon.up());

  SubmitRequest req;
  req.protocol = "dolev-strong";
  req.config = {3, 1, 0, 1};
  req.seed = 7;
  const auto resp = daemon.client().run(req, std::chrono::seconds(60));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->ok);

  const auto text = daemon.client().metrics(std::chrono::seconds(10));
  ASSERT_TRUE(text.has_value());
  // Prometheus text format: HELP/TYPE preambles and the counters the
  // instance just incremented.
  EXPECT_NE(text->find("# TYPE dr82_instances_completed_total counter"),
            std::string::npos);
  EXPECT_NE(text->find("dr82_instances_completed_total 1"),
            std::string::npos);
  EXPECT_NE(text->find("dr82_instances_failed_total 0"), std::string::npos);
  EXPECT_NE(text->find("dr82_endpoints 3"), std::string::npos);
  EXPECT_NE(text->find("dr82_endpoints_ready 3"), std::string::npos);
  // The paper metrics flow into the service totals. Anchor the search at
  // a line start so the HELP/TYPE preambles don't match first.
  const std::string key = "\ndr82_messages_by_correct_total ";
  const auto pos = text->find(key);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t value = static_cast<std::size_t>(
      std::stoull(text->substr(pos + key.size())));
  EXPECT_EQ(value, resp->metrics.messages_by_correct());
}

}  // namespace
}  // namespace dr::svc
