#include "ba/exchange.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "bounds/formulas.h"
#include "codec/codec.h"
#include "sim/runner.h"

namespace dr::ba {
namespace {

TEST(Attested, RoundTripAndVerify) {
  crypto::KeyRegistry registry(4, 1);
  crypto::Verifier verifier(&registry);
  crypto::Signer signer(&registry, {2});
  const Attested a = attest(to_bytes("payload"), signer, 2);
  EXPECT_TRUE(verify_attested(a, verifier));

  Writer w;
  encode(w, a);
  Reader r(w.out());
  const auto decoded = decode_attested(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(*decoded, a);
  EXPECT_TRUE(verify_attested(*decoded, verifier));
}

TEST(Attested, TamperDetected) {
  crypto::KeyRegistry registry(4, 1);
  crypto::Verifier verifier(&registry);
  crypto::Signer signer(&registry, {2});
  Attested a = attest(to_bytes("payload"), signer, 2);
  a.body.push_back(0x00);
  EXPECT_FALSE(verify_attested(a, verifier));
  Attested b = attest(to_bytes("payload"), signer, 2);
  b.signer = 3;
  EXPECT_FALSE(verify_attested(b, verifier));
}

/// Runs an exchange with the given faulty ids (silent) and returns the
/// installed process pointers for inspection. The runner stays alive in the
/// returned struct: it owns the processes the pointers refer to.
template <typename P>
struct ExchangeRun {
  std::unique_ptr<sim::Runner> runner;
  std::vector<P*> procs;
  sim::RunResult result;
};

template <typename P, typename MakeFn>
ExchangeRun<P> run_exchange(std::size_t n,
                            const std::vector<sim::ProcId>& faulty,
                            sim::PhaseNum steps, MakeFn make) {
  ExchangeRun<P> run;
  run.runner = std::make_unique<sim::Runner>(
      sim::RunConfig{.n = n, .t = faulty.size(), .seed = 3});
  for (sim::ProcId f : faulty) run.runner->mark_faulty(f);
  run.procs.assign(n, nullptr);
  for (sim::ProcId p = 0; p < n; ++p) {
    if (run.runner->is_faulty(p)) {
      run.runner->install(p, std::make_unique<adversary::SilentProcess>());
    } else {
      auto proc = make(p);
      run.procs[p] = proc.get();
      run.runner->install(p, std::move(proc));
    }
  }
  run.result = run.runner->run(steps);
  return run;
}

Bytes body_of(sim::ProcId p) { return encode_u64(1000 + p); }

TEST(GridExchange, FailureFreeEveryoneKnowsEveryone) {
  const std::size_t m = 3;
  const std::size_t n = m * m;
  auto run = run_exchange<GridExchangeProcess>(
      n, {}, GridExchangeProcess::steps(m), [&](sim::ProcId p) {
        return std::make_unique<GridExchangeProcess>(p, m, body_of(p));
      });
  auto& procs = run.procs;
  auto& result = run.result;
  for (sim::ProcId p = 0; p < n; ++p) {
    ASSERT_EQ(procs[p]->known().size(), n) << "processor " << p;
    for (sim::ProcId q = 0; q < n; ++q) {
      ASSERT_TRUE(procs[p]->known().contains(q));
      EXPECT_EQ(procs[p]->known().at(q).body, body_of(q));
    }
  }
  EXPECT_LE(result.metrics.messages_by_correct(),
            bounds::alg4_message_upper_bound(m));
  EXPECT_EQ(result.metrics.messages_by_correct(), 3 * (m - 1) * m * m);
  EXPECT_LE(result.metrics.last_active_phase(), 3u);
}

class GridExchangeFaulty
    : public ::testing::TestWithParam<std::vector<sim::ProcId>> {};

TEST_P(GridExchangeFaulty, Lemma2NonIsolatedMutualKnowledge) {
  const std::size_t m = 4;
  const std::size_t n = m * m;
  const std::vector<sim::ProcId> faulty = GetParam();
  auto run = run_exchange<GridExchangeProcess>(
      n, faulty, GridExchangeProcess::steps(m), [&](sim::ProcId p) {
        return std::make_unique<GridExchangeProcess>(p, m, body_of(p));
      });
  auto& procs = run.procs;
  auto& result = run.result;

  // |P| >= N - 2t.
  std::size_t non_isolated_count = 0;
  for (sim::ProcId p = 0; p < n; ++p) {
    if (non_isolated(p, m, result.faulty)) ++non_isolated_count;
  }
  EXPECT_GE(non_isolated_count, n - 2 * faulty.size());

  // Every non-isolated pair exchanged values.
  for (sim::ProcId p = 0; p < n; ++p) {
    if (!non_isolated(p, m, result.faulty)) continue;
    for (sim::ProcId q = 0; q < n; ++q) {
      if (!non_isolated(q, m, result.faulty)) continue;
      ASSERT_TRUE(procs[p]->known().contains(q))
          << p << " does not know " << q;
      EXPECT_EQ(procs[p]->known().at(q).body, body_of(q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultPlacements, GridExchangeFaulty,
    ::testing::Values(std::vector<sim::ProcId>{0},
                      std::vector<sim::ProcId>{0, 5, 10, 15},  // diagonal
                      std::vector<sim::ProcId>{0, 1, 2, 3},    // full row
                      std::vector<sim::ProcId>{0, 4, 8, 12},   // full column
                      std::vector<sim::ProcId>{1, 6, 7, 11}));

TEST(GridExchange, ByzantineSendersCannotPoisonFormat) {
  const std::size_t m = 3;
  const std::size_t n = m * m;
  sim::Runner runner(sim::RunConfig{.n = n, .t = 2, .seed = 7});
  runner.mark_faulty(1);
  runner.mark_faulty(5);
  std::vector<GridExchangeProcess*> procs(n, nullptr);
  for (sim::ProcId p = 0; p < n; ++p) {
    if (runner.is_faulty(p)) {
      runner.install(p,
                     std::make_unique<adversary::RandomByzantine>(p, 0.9));
    } else {
      auto proc = std::make_unique<GridExchangeProcess>(p, m, body_of(p));
      procs[p] = proc.get();
      runner.install(p, std::move(proc));
    }
  }
  const auto result = runner.run(GridExchangeProcess::steps(m));
  // No correct processor may record a wrong body for a correct sender.
  for (sim::ProcId p = 0; p < n; ++p) {
    if (procs[p] == nullptr) continue;
    for (const auto& [signer, attested] : procs[p]->known()) {
      if (result.faulty[signer]) continue;
      EXPECT_EQ(attested.body, body_of(signer));
    }
  }
}

TEST(NaiveExchange, EveryoneKnowsEveryoneAtQuadraticCost) {
  const std::size_t n = 9;
  auto run = run_exchange<NaiveExchangeProcess>(
      n, {}, NaiveExchangeProcess::steps(), [&](sim::ProcId p) {
        return std::make_unique<NaiveExchangeProcess>(p, n, body_of(p));
      });
  auto& procs = run.procs;
  auto& result = run.result;
  for (sim::ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(procs[p]->known().size(), n);
  }
  EXPECT_EQ(result.metrics.messages_by_correct(),
            bounds::naive_exchange_messages(n));
}

TEST(RelayExchange, CorrectPairsExchangeThroughRelays) {
  const std::size_t n = 12;
  const std::size_t t = 2;
  // Two faulty (silent) processors, one of them a relay.
  const std::vector<sim::ProcId> faulty{1, 7};
  auto run = run_exchange<RelayExchangeProcess>(
      n, faulty, RelayExchangeProcess::steps(), [&](sim::ProcId p) {
        return std::make_unique<RelayExchangeProcess>(p, n, t, body_of(p));
      });
  auto& procs = run.procs;
  auto& result = run.result;
  for (sim::ProcId p = 0; p < n; ++p) {
    if (procs[p] == nullptr) continue;
    for (sim::ProcId q = 0; q < n; ++q) {
      if (result.faulty[q]) continue;
      ASSERT_TRUE(procs[p]->known().contains(q))
          << p << " missing " << q;
      EXPECT_EQ(procs[p]->known().at(q).body, body_of(q));
    }
  }
  EXPECT_LE(result.metrics.messages_by_correct(),
            bounds::relay_exchange_messages(n, t));
}

TEST(ExchangeCosts, GridBeatsBothBaselinesForLargeNAndT) {
  // Theorem 6's point: 3(m-1)m^2 beats the Theta(N*t) alternatives once t
  // is large relative to sqrt(N) (exactly: t+1 > 3(m-1)/2 against the relay
  // formula, t > 3(m-1) against N*t itself).
  const std::size_t m = 8;
  const std::size_t n = m * m;
  const std::size_t t = 3 * m;
  EXPECT_LT(bounds::alg4_message_upper_bound(m),
            bounds::naive_exchange_messages(n));
  EXPECT_LT(bounds::alg4_message_upper_bound(m),
            bounds::relay_exchange_messages(n, t));
  EXPECT_LT(bounds::alg4_message_upper_bound(m), n * t);
}

TEST(NonIsolated, RowMajorityRule) {
  const std::size_t m = 4;
  std::vector<bool> faulty(16, false);
  faulty[0] = faulty[1] = true;  // half of row 0 faulty
  EXPECT_FALSE(non_isolated(0, m, faulty));  // faulty itself
  EXPECT_FALSE(non_isolated(2, m, faulty));  // 2 faults = m/2, not < m/2
  EXPECT_TRUE(non_isolated(4, m, faulty));   // clean row
  faulty[1] = false;
  EXPECT_TRUE(non_isolated(2, m, faulty));  // now 1 fault < 2
}

}  // namespace
}  // namespace dr::ba
