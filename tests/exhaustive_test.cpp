// Exhaustive small-model checking: every derivation-closed strategy of one
// Byzantine processor, at configurations small enough to enumerate fully.
#include "verify/exhaustive.h"

#include <gtest/gtest.h>

#include "bounds/theorem2.h"
#include "test_util.h"

namespace dr::verify {
namespace {

using ba::BAConfig;

TEST(Exhaustive, Algorithm1AllAdversariesAtN3T1) {
  const ba::Protocol& protocol = *ba::find_protocol("alg1");
  for (ba::Value v : {ba::Value{0}, ba::Value{1}}) {
    for (ba::ProcId faulty : {ba::ProcId{0}, ba::ProcId{1}, ba::ProcId{2}}) {
      const auto result =
          exhaust(protocol, BAConfig{3, 1, 0, v}, faulty);
      EXPECT_FALSE(result.truncated) << "faulty=" << faulty;
      EXPECT_EQ(result.violations, 0u)
          << "faulty=" << faulty << " v=" << v << " after "
          << result.executions << " executions";
      EXPECT_GT(result.executions, 100u);  // the space is non-trivial
    }
  }
}

TEST(Exhaustive, Algorithm1MVAllAdversariesAtN3T1) {
  const ba::Protocol& protocol = *ba::find_protocol("alg1-mv");
  const auto result = exhaust(protocol, BAConfig{3, 1, 0, 1}, 0);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.violations, 0u);
}

TEST(Exhaustive, DolevStrongAllAdversariesAtN4T1) {
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
  for (ba::ProcId faulty : {ba::ProcId{0}, ba::ProcId{2}}) {
    const auto result = exhaust(protocol, BAConfig{4, 1, 0, 1}, faulty);
    EXPECT_FALSE(result.truncated) << "faulty=" << faulty;
    EXPECT_EQ(result.violations, 0u)
        << "faulty=" << faulty << " after " << result.executions
        << " executions";
  }
}

TEST(Exhaustive, EigAllAdversariesAtN4T1) {
  const ba::Protocol& protocol = *ba::find_protocol("eig");
  const auto result = exhaust(protocol, BAConfig{4, 1, 0, 1}, 3);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.violations, 0u) << result.executions;
}

TEST(Exhaustive, FindsTheViolationInABrokenProtocol) {
  // Sanity check that the checker can actually find bugs: the thrifty
  // one-shot broadcast from the Theorem 2 apparatus is broken by (among
  // others) the withholding transmitter, which lives inside the enumerated
  // strategy space.
  const ba::Protocol broken = bounds::make_one_shot_protocol();
  const auto result = exhaust(broken, BAConfig{4, 1, 0, 1}, 0);
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.violations, 0u);
  EXPECT_FALSE(result.first_violation.empty());
}

TEST(Exhaustive, Algorithm1AllRushingAdversariesAtN3T1) {
  // The rushing adversary sees this phase's correct traffic before
  // choosing, enlarging its option pools; Algorithm 1 must still survive
  // the whole tree.
  ExhaustiveOptions options;
  options.rushing = true;
  for (ba::ProcId faulty : {ba::ProcId{0}, ba::ProcId{2}}) {
    const auto result = exhaust(*ba::find_protocol("alg1"),
                                BAConfig{3, 1, 0, 1}, faulty, options);
    EXPECT_FALSE(result.truncated) << "faulty=" << faulty;
    EXPECT_EQ(result.violations, 0u)
        << "faulty=" << faulty << " after " << result.executions;
  }
}

TEST(Exhaustive, RespectsTheRunCap) {
  ExhaustiveOptions options;
  options.max_runs = 50;
  const auto result = exhaust(*ba::find_protocol("dolev-strong"),
                              BAConfig{4, 1, 0, 1}, 1, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.executions, 50u);
}

}  // namespace
}  // namespace dr::verify
