#include "ba/interactive_consistency.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::silent;

/// Asserts the two PSL interactive-consistency conditions over the result:
/// every pair of correct processors holds the same vector, and entry i of
/// that vector equals values[i] whenever processor i is correct.
void expect_interactive_consistency(const ICResult& result,
                                    const std::vector<Value>& values) {
  const std::size_t n = values.size();
  const std::vector<std::optional<Value>>* reference = nullptr;
  for (ProcId p = 0; p < n; ++p) {
    if (result.run.faulty[p]) continue;
    const auto& vec = result.vectors[p];
    ASSERT_EQ(vec.size(), n) << "processor " << p;
    if (reference == nullptr) {
      reference = &result.vectors[p];
    } else {
      EXPECT_EQ(vec, *reference) << "vector disagreement at " << p;
    }
    for (ProcId i = 0; i < n; ++i) {
      if (result.run.faulty[i]) continue;
      ASSERT_TRUE(vec[i].has_value());
      EXPECT_EQ(*vec[i], values[i])
          << "processor " << p << " got entry " << i << " wrong";
    }
  }
  ASSERT_NE(reference, nullptr);
}

std::vector<Value> test_values(std::size_t n) {
  std::vector<Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = 1000 + 7 * i;
  return values;
}

class ICBases : public ::testing::TestWithParam<std::string> {};

TEST_P(ICBases, FailureFree) {
  const Protocol& base = *find_protocol(GetParam());
  const std::size_t t = 2;
  // phase-king needs n > 4t; the others are fine at n = 7.
  const std::size_t n =
      InteractiveConsistency::supports(base, 7, t) ? 7 : 9;
  ASSERT_TRUE(InteractiveConsistency::supports(base, n, t));
  const auto values = test_values(n);
  const auto result = run_interactive_consistency(base, values, t, 1);
  expect_interactive_consistency(result, values);
}

TEST_P(ICBases, WithSilentAndChaoticFaults) {
  const Protocol& base = *find_protocol(GetParam());
  const std::size_t t = 2;
  const std::size_t n =
      InteractiveConsistency::supports(base, 7, t) ? 7 : 9;
  const auto values = test_values(n);
  const auto result = run_interactive_consistency(
      base, values, t, 1, {silent(3), chaos(6, 99, 0.3)});
  expect_interactive_consistency(result, values);
}

INSTANTIATE_TEST_SUITE_P(Bases, ICBases,
                         ::testing::Values("dolev-strong",
                                           "dolev-strong-relay", "eig",
                                           "phase-king"),
                         [](const auto& param_info) {
                           std::string tag = param_info.param;
                           for (char& c : tag) {
                             if (c == '-') c = '_';
                           }
                           return tag;
                         });

TEST(InteractiveConsistency, FaultyEntriesStillAgreeAcrossCorrect) {
  // The faulty processor's entry may be anything, but it must be the SAME
  // anything at every correct processor (condition 1 of PSL).
  const Protocol& base = *find_protocol("dolev-strong");
  const std::size_t n = 7;
  const std::size_t t = 2;
  const auto values = test_values(n);
  const auto result = run_interactive_consistency(base, values, t, 5,
                                                  {chaos(2, 17, 0.6)});
  const std::vector<std::optional<Value>>* reference = nullptr;
  for (ProcId p = 0; p < n; ++p) {
    if (result.run.faulty[p]) continue;
    if (reference == nullptr) {
      reference = &result.vectors[p];
    } else {
      EXPECT_EQ(result.vectors[p], *reference);
    }
  }
}

TEST(InteractiveConsistency, CostIsNTimesTheBase) {
  const Protocol& base = *find_protocol("dolev-strong");
  const std::size_t n = 7;
  const std::size_t t = 2;
  const auto values = test_values(n);
  const auto ic = run_interactive_consistency(base, values, t, 1);
  // One plain broadcast for comparison.
  const auto single = run_scenario(base, BAConfig{n, t, 0, 1}, 1);
  // n parallel instances: within a factor-of-n envelope (instances with
  // different transmitters cost slightly different amounts).
  EXPECT_GE(ic.run.metrics.messages_by_correct(),
            single.metrics.messages_by_correct() * (n - 1));
  EXPECT_LE(ic.run.metrics.messages_by_correct(),
            single.metrics.messages_by_correct() * (n + 1));
}

TEST(InteractiveConsistency, SupportsRequiresArbitraryTransmitters) {
  // alg1 fixes the transmitter to 0, so it cannot serve as an IC base.
  EXPECT_FALSE(
      InteractiveConsistency::supports(*find_protocol("alg1"), 7, 3));
  EXPECT_TRUE(
      InteractiveConsistency::supports(*find_protocol("dolev-strong"), 7,
                                       2));
}

TEST(InteractiveConsistency, MalformedTagsAreIgnored) {
  // A fault that sprays untagged garbage must not break the multiplexer.
  const Protocol& base = *find_protocol("dolev-strong");
  const std::size_t n = 5;
  const std::size_t t = 1;
  const auto values = test_values(n);
  const auto result = run_interactive_consistency(base, values, t, 3,
                                                  {chaos(4, 1234, 0.9)});
  expect_interactive_consistency(result, values);
}

}  // namespace
}  // namespace dr::ba
