// Contracts and logging: the small pieces everything else leans on.
#include <gtest/gtest.h>

#include "codec/codec.h"
#include "util/contracts.h"
#include "util/log.h"
#include "util/rng.h"

namespace dr {
namespace {

// Contract violations abort with a diagnostic naming the condition.
TEST(ContractsDeathTest, ExpectsAborts) {
  EXPECT_DEATH({ DR_EXPECTS(1 == 2); }, "Precondition.*1 == 2");
}

TEST(ContractsDeathTest, EnsuresAborts) {
  EXPECT_DEATH({ DR_ENSURES(false); }, "Postcondition");
}

TEST(ContractsDeathTest, AssertAborts) {
  EXPECT_DEATH({ DR_ASSERT(false); }, "Invariant");
}

TEST(Contracts, SatisfiedConditionsAreSilent) {
  DR_EXPECTS(true);
  DR_ENSURES(2 + 2 == 4);
  DR_ASSERT(1 < 2);
}

TEST(ContractsDeathTest, RngBelowZeroIsAPrecondition) {
  Xoshiro256 rng(1);
  EXPECT_DEATH({ rng.below(0); }, "Precondition");
}

TEST(ContractsDeathTest, RngRangeInvertedIsAPrecondition) {
  Xoshiro256 rng(1);
  EXPECT_DEATH({ rng.range(5, 3); }, "Precondition");
}

TEST(Log, LevelGatesOutput) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold calls must be no-ops (nothing observable to assert
  // beyond "does not crash"; the formatting path is exercised at kDebug).
  DR_LOG_DEBUG("dropped %d", 1);
  DR_LOG_WARN("dropped %s", "too");
  set_log_level(LogLevel::kDebug);
  DR_LOG_DEBUG("emitted %d %s", 42, "ok");
  DR_LOG_ERROR("emitted error");
  set_log_level(LogLevel::kOff);
  DR_LOG_ERROR("dropped even at error");
  set_log_level(saved);
}

TEST(Codec, WriterTakeLeavesReusableState) {
  Writer w;
  w.u64(7);
  const Bytes first = std::move(w).take();
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace dr
