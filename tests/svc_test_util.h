// Shared daemon fixture for the svc suites: an in-process coordinator,
// E real endpoint OS processes (fork + exec of the dr82d binary the build
// produced — SVCD_BINARY is injected by tests/CMakeLists.txt), and one
// connected client. The endpoints being separate processes is the point:
// these suites hold the *deployed* daemon, not a threaded stand-in, to the
// simulator's numbers.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <string>
#include <thread>

#include "svc/client.h"
#include "svc/coordinator.h"
#include "svc/supervisor.h"

namespace dr::test {

class SvcDaemon {
 public:
  explicit SvcDaemon(std::size_t endpoints) : endpoints_(endpoints) {
    svc::Coordinator::Options options;
    options.endpoints = endpoints;
    coordinator_ = std::make_unique<svc::Coordinator>(options);
    if (!coordinator_->bind()) {
      ADD_FAILURE() << "svc daemon fixture: bind failed";
      return;
    }
    serve_thread_ = std::thread([this] { (void)coordinator_->serve(); });
    const std::string coord_addr =
        "127.0.0.1:" + std::to_string(coordinator_->port());
    for (std::size_t p = 0; p < endpoints; ++p) {
      const pid_t pid = supervisor_.spawn(
          {SVCD_BINARY, "endpoint", "--coord", coord_addr, "--id",
           std::to_string(p), "--endpoints", std::to_string(endpoints)});
      if (pid < 0) {
        ADD_FAILURE() << "svc daemon fixture: spawn failed";
        return;
      }
    }
    if (!client_.connect("127.0.0.1", coordinator_->port(),
                         std::chrono::seconds(10))) {
      ADD_FAILURE() << "svc daemon fixture: client connect failed";
      return;
    }
    // Wait until the whole mesh reports ready: tests (and their teardown)
    // must race instance traffic, never the handshake.
    const std::string ready_line =
        "dr82_endpoints_ready " + std::to_string(endpoints);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto text = client_.metrics(std::chrono::seconds(5));
      if (text.has_value() &&
          text->find(ready_line) != std::string::npos) {
        up_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "svc daemon fixture: endpoints never became ready";
  }

  ~SvcDaemon() {
    if (client_.connected()) (void)client_.shutdown_server();
    if (serve_thread_.joinable()) {
      // The shutdown message stops the coordinator; stop() is the
      // belt-and-braces fallback if the client never connected.
      coordinator_->stop();
      serve_thread_.join();
    }
    const std::size_t abnormal = supervisor_.wait_all();
    EXPECT_EQ(abnormal, 0u) << "endpoint process(es) exited abnormally";
  }

  bool up() const { return up_; }
  std::size_t endpoints() const { return endpoints_; }
  svc::Client& client() { return client_; }

 private:
  std::size_t endpoints_;
  std::unique_ptr<svc::Coordinator> coordinator_;
  std::thread serve_thread_;
  svc::Supervisor supervisor_;
  svc::Client client_;
  bool up_ = false;
};

}  // namespace dr::test
