#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.h"

namespace dr::crypto {
namespace {

std::string hex_digest(ByteView data) {
  const Digest d = sha256(data);
  return to_hex(ByteView{d.data(), d.size()});
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex_digest({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(as_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex_digest(as_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: forces the padding into a second block.
  const std::string s(64, 'a');
  EXPECT_EQ(hex_digest(as_bytes(s)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes is the longest message fitting padding in one block.
  EXPECT_EQ(hex_digest(as_bytes(std::string(55, 'a'))),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(hex_digest(as_bytes(std::string(56, 'a'))),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  const Digest d = h.finish();
  EXPECT_EQ(to_hex(ByteView{d.data(), d.size()}),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and at odd "
      "chunk boundaries.";
  const Digest once = sha256(as_bytes(msg));
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(as_bytes(std::string_view(msg).substr(0, split)));
    h.update(as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(h.finish(), once) << "split at " << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(as_bytes("abc"));
  const Digest first = h.finish();
  h.reset();
  h.update(as_bytes("abc"));
  EXPECT_EQ(h.finish(), first);
}

TEST(Sha256, DifferentInputsDiffer) {
  EXPECT_NE(sha256(as_bytes("abc")), sha256(as_bytes("abd")));
  EXPECT_NE(sha256(as_bytes("abc")), sha256(as_bytes("abc ")));
}

TEST(Sha256, BytesHelperMatches) {
  const Digest d = sha256(as_bytes("xyz"));
  const Bytes b = sha256_bytes(as_bytes("xyz"));
  ASSERT_EQ(b.size(), d.size());
  EXPECT_TRUE(std::equal(b.begin(), b.end(), d.begin()));
}

}  // namespace
}  // namespace dr::crypto
