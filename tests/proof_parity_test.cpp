// Differential proof parity: the same (protocol, config, seed) run on the
// in-memory simulator, the in-process transport, the TCP loopback
// transport and the multi-process daemon must yield byte-identical
// serialized proofs — same canonical encoding, same content digest — for
// every holder. Proof identity is content-addressed, so this is the
// strongest form of the repo's parity bar: not just equal decisions and
// metrics, but equal *evidence* down to the last signature byte.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ba/registry.h"
#include "net/harness.h"
#include "proof/transferable.h"
#include "svc_test_util.h"

namespace dr::proof {
namespace {

using ba::BAConfig;
using ba::Protocol;

ByteView view(const Bytes& b) { return ByteView{b.data(), b.size()}; }

Realm make_realm(const BAConfig& config, std::uint64_t seed) {
  return Realm{.scheme = sim::SchemeKind::kHmac,
               .n = config.n,
               .t = config.t,
               .transmitter = config.transmitter,
               .seed = seed,
               .merkle_height = 6};
}

/// Wraps per-processor evidence blobs into encoded Transferables (empty
/// where the processor emitted none).
std::vector<Bytes> encode_all(const Realm& realm,
                              const std::vector<Bytes>& evidence) {
  std::vector<Bytes> out(evidence.size());
  for (ProcId p = 0; p < evidence.size(); ++p) {
    if (evidence[p].empty()) continue;
    const auto proof = from_evidence(realm, p, view(evidence[p]));
    EXPECT_TRUE(proof.has_value()) << "holder " << p;
    if (proof.has_value()) out[p] = encode_transferable(*proof);
  }
  return out;
}

void expect_same_proofs(const char* label, const std::vector<Bytes>& want,
                        const std::vector<Bytes>& got) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t p = 0; p < want.size(); ++p) {
    EXPECT_EQ(want[p], got[p])
        << label << ": holder " << p << " proof bytes differ";
    if (want[p].empty() || got[p].empty()) continue;
    const auto a = decode_transferable(view(want[p]));
    const auto b = decode_transferable(view(got[p]));
    ASSERT_TRUE(a.has_value() && b.has_value()) << label;
    EXPECT_EQ(digest(*a), digest(*b)) << label << ": holder " << p;
  }
}

class ProofParity : public ::testing::TestWithParam<
                        std::tuple<const char*, std::uint64_t>> {};

TEST_P(ProofParity, SimInProcessAndTcpProofsAreByteIdentical) {
  const auto& [name, seed] = GetParam();
  const Protocol* protocol = ba::find_protocol(name);
  ASSERT_NE(protocol, nullptr);
  const BAConfig config{5, 2, 0, 1};
  const Realm realm = make_realm(config, seed);

  const sim::RunResult sim_run = ba::run_scenario(*protocol, config, seed);
  const std::vector<Bytes> sim_proofs =
      encode_all(realm, sim_run.evidence);
  std::size_t nonempty = 0;
  for (const Bytes& p : sim_proofs) {
    if (!p.empty()) ++nonempty;
  }
  ASSERT_GT(nonempty, 0u) << "sim run produced no proofs";

  net::NetScenarioOptions options;
  options.seed = seed;
  const net::NetRunResult inprocess = net::run_scenario(
      *protocol, config, net::Backend::kInProcess, options);
  ASSERT_FALSE(inprocess.watchdog_fired);
  expect_same_proofs("inprocess", sim_proofs,
                     encode_all(realm, inprocess.run.evidence));

  const net::NetRunResult tcp = net::run_scenario(
      *protocol, config, net::Backend::kTcpLoopback, options);
  ASSERT_FALSE(tcp.watchdog_fired);
  expect_same_proofs("tcp", sim_proofs,
                     encode_all(realm, tcp.run.evidence));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ProofParity,
    ::testing::Values(std::tuple{"dolev-strong", std::uint64_t{7}},
                      std::tuple{"dolev-strong-relay", std::uint64_t{7}},
                      std::tuple{"alg2", std::uint64_t{11}}));

TEST(ProofParityDaemon, DaemonProofsMatchSimByteForByte) {
  // The deployed daemon: real endpoint OS processes, proofs fetched over
  // the wire with kProveReq — and still the same bytes the simulator's
  // evidence wraps to.
  const BAConfig config{5, 2, 0, 1};
  const std::uint64_t seed = 7;
  const Realm realm = make_realm(config, seed);

  test::SvcDaemon daemon(5);
  ASSERT_TRUE(daemon.up());

  svc::SubmitRequest req;
  req.protocol = "dolev-strong";
  req.config = config;
  req.seed = seed;
  const auto resp = daemon.client().run(req, std::chrono::seconds(60));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->ok) << resp->error;
  ASSERT_FALSE(resp->watchdog_fired);
  ASSERT_NE(resp->instance, 0u);

  const sim::RunResult sim_run = ba::run_scenario(
      *ba::find_protocol("dolev-strong"), config, seed);
  const std::vector<Bytes> sim_proofs =
      encode_all(realm, sim_run.evidence);

  std::vector<Bytes> daemon_proofs(config.n);
  for (ProcId p = 0; p < config.n; ++p) {
    const auto proof =
        daemon.client().prove(resp->instance, p, std::chrono::seconds(10));
    ASSERT_TRUE(proof.has_value()) << "holder " << p;
    ASSERT_TRUE(proof->ok) << "holder " << p << ": " << proof->error;
    daemon_proofs[p] = proof->proof;
  }
  expect_same_proofs("daemon", sim_proofs, daemon_proofs);

  // Round-trip the daemon's own proofs through its bulk verifier: every
  // digest is already in the store, so every verdict is kOk.
  const auto verdicts = daemon.client().verify_proofs(
      daemon_proofs, std::chrono::seconds(30));
  ASSERT_TRUE(verdicts.has_value());
  ASSERT_EQ(verdicts->size(), daemon_proofs.size());
  for (const std::uint8_t v : *verdicts) {
    EXPECT_EQ(static_cast<Verdict>(v), Verdict::kOk);
  }

  // Unknown instances and tampered proofs are turned away at the API.
  const auto missing = daemon.client().prove(resp->instance + 999, 0,
                                             std::chrono::seconds(10));
  ASSERT_TRUE(missing.has_value());
  EXPECT_FALSE(missing->ok);

  Bytes tampered = daemon_proofs[1];
  tampered.back() ^= 0x01;
  const auto bad = daemon.client().verify_proofs(
      {tampered}, std::chrono::seconds(10));
  ASSERT_TRUE(bad.has_value());
  ASSERT_EQ(bad->size(), 1u);
  EXPECT_NE(static_cast<Verdict>(bad->front()), Verdict::kOk);
}

}  // namespace
}  // namespace dr::proof
