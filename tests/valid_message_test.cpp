#include "ba/valid_message.h"

#include <gtest/gtest.h>

#include "crypto/key_registry.h"

namespace dr::ba {
namespace {

class ValidMessageTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 12;
  static constexpr std::size_t kActive = 9;
  static constexpr std::size_t kT = 2;

  crypto::KeyRegistry registry_{kN, 1};
  crypto::Verifier verifier_{&registry_};

  SignedValue chain(Value v, std::initializer_list<ProcId> signers) {
    SignedValue sv{v, {}};
    for (ProcId id : signers) {
      crypto::Signer s(&registry_, {id});
      sv = extend(sv, s, id);
    }
    return sv;
  }
};

TEST_F(ValidMessageTest, EnoughActiveSignersIsValid) {
  EXPECT_TRUE(is_valid_message(chain(1, {0, 1, 2}), verifier_, kActive, kT));
}

TEST_F(ValidMessageTest, TooFewActiveSignersInvalid) {
  EXPECT_FALSE(is_valid_message(chain(1, {0, 1}), verifier_, kActive, kT));
}

TEST_F(ValidMessageTest, PassiveSignaturesDoNotCount) {
  // Signers 9, 10, 11 are passive: only 2 active signatures remain.
  EXPECT_FALSE(
      is_valid_message(chain(1, {0, 1, 9, 10, 11}), verifier_, kActive, kT));
}

TEST_F(ValidMessageTest, PassiveSignaturesOnTopAreFine) {
  EXPECT_TRUE(
      is_valid_message(chain(1, {0, 1, 2, 9, 10}), verifier_, kActive, kT));
}

TEST_F(ValidMessageTest, DuplicateActiveSignerCountsOnce) {
  EXPECT_FALSE(
      is_valid_message(chain(1, {0, 1, 0, 1}), verifier_, kActive, kT));
}

TEST_F(ValidMessageTest, BrokenChainInvalid) {
  SignedValue sv = chain(1, {0, 1, 2});
  sv.value = 0;  // breaks all three signatures
  EXPECT_FALSE(is_valid_message(sv, verifier_, kActive, kT));
}

TEST_F(ValidMessageTest, PossessionProofCountsOthersOnly) {
  const SignedValue sv = chain(1, {0, 1, 2});
  // For holder 5 all three signatures are "others".
  EXPECT_TRUE(is_possession_proof(sv, verifier_, 5, 3));
  // For holder 1 only two remain.
  EXPECT_FALSE(is_possession_proof(sv, verifier_, 1, 3));
  EXPECT_TRUE(is_possession_proof(sv, verifier_, 1, 2));
}

TEST_F(ValidMessageTest, PossessionProofRejectsDuplicates) {
  EXPECT_FALSE(is_possession_proof(chain(1, {0, 0, 0}), verifier_, 5, 2));
}

TEST_F(ValidMessageTest, PossessionProofRejectsBrokenChain) {
  SignedValue sv = chain(1, {0, 1});
  sv.chain[1].sig[0] ^= 1;
  EXPECT_FALSE(is_possession_proof(sv, verifier_, 5, 2));
}

}  // namespace
}  // namespace dr::ba
