// Tests for the rushing-adversary execution mode: faulty processors observe
// the current phase's correct traffic (addressed to them) before sending.
#include <gtest/gtest.h>

#include "ba/signed_value.h"
#include "test_util.h"

namespace dr {
namespace {

using ba::BAConfig;
using ba::ProcId;
using ba::ScenarioFault;
using ba::ScenarioOptions;
using ba::Value;

/// Sends one marker to everyone at phase 1 and records its inbox phases.
class Marker final : public sim::Process {
 public:
  void on_phase(sim::Context& ctx) override {
    if (ctx.phase() == 1) {
      for (ProcId q = 0; q < ctx.n(); ++q) {
        if (q != ctx.self()) ctx.send(q, to_bytes("marker"), 0);
      }
    }
  }
  std::optional<Value> decision() const override { return std::nullopt; }
};

/// Records, for each message received, (sent_phase, seen_phase).
class Recorder final : public sim::Process {
 public:
  void on_phase(sim::Context& ctx) override {
    for (const sim::Envelope& env : ctx.inbox()) {
      seen_.emplace_back(env.sent_phase, ctx.phase());
    }
  }
  std::optional<Value> decision() const override { return std::nullopt; }
  const std::vector<std::pair<sim::PhaseNum, sim::PhaseNum>>& seen() const {
    return seen_;
  }

 private:
  std::vector<std::pair<sim::PhaseNum, sim::PhaseNum>> seen_;
};

TEST(Rushing, FaultySeesCurrentPhaseTraffic) {
  sim::RunConfig cfg{.n = 2, .t = 1, .rushing = true};
  sim::Runner runner(cfg);
  runner.mark_faulty(1);
  runner.install(0, std::make_unique<Marker>());
  auto recorder = std::make_unique<Recorder>();
  auto* rec = recorder.get();
  runner.install(1, std::move(recorder));
  runner.run(3);
  // The faulty recorder sees the phase-1 marker twice: rushed during phase
  // 1 and delivered normally at phase 2.
  ASSERT_EQ(rec->seen().size(), 2u);
  EXPECT_EQ(rec->seen()[0], (std::pair<sim::PhaseNum, sim::PhaseNum>{1, 1}));
  EXPECT_EQ(rec->seen()[1], (std::pair<sim::PhaseNum, sim::PhaseNum>{1, 2}));
}

TEST(Rushing, CorrectProcessorsDoNotRush) {
  sim::RunConfig cfg{.n = 2, .t = 1, .rushing = true};
  sim::Runner runner(cfg);
  runner.mark_faulty(0);
  runner.install(0, std::make_unique<Marker>());  // faulty marker
  auto recorder = std::make_unique<Recorder>();
  auto* rec = recorder.get();
  runner.install(1, std::move(recorder));
  runner.run(3);
  // The correct recorder sees the marker exactly once, one phase later.
  ASSERT_EQ(rec->seen().size(), 1u);
  EXPECT_EQ(rec->seen()[0], (std::pair<sim::PhaseNum, sim::PhaseNum>{1, 2}));
}

/// A rushing equivocation attempt: upon seeing the current phase's chains,
/// immediately replay a mutated copy (flip the value) back into the next
/// phase, plus echo everything it sees to confuse relays.
class RushingMirror final : public sim::Process {
 public:
  void on_phase(sim::Context& ctx) override {
    for (const sim::Envelope& env : ctx.inbox()) {
      auto sv = ba::decode_signed_value(env.payload);
      if (!sv) continue;
      sv->value ^= 1;  // breaks every signature, but try anyway
      const Bytes mutated = ba::encode(*sv);
      for (ProcId q = 0; q < ctx.n(); ++q) {
        if (q != ctx.self()) {
          ctx.send(q, mutated, 0);
          ctx.send(q, env.payload, 0);  // replay verbatim, late
        }
      }
    }
  }
  std::optional<Value> decision() const override { return std::nullopt; }
};

class RushingProtocolSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t,
                                                 std::size_t>> {};

TEST_P(RushingProtocolSweep, AgreementHoldsUnderRushingAdversaries) {
  const auto& [name, n, t] = GetParam();
  const ba::Protocol& protocol = *ba::find_protocol(name);
  const BAConfig config{n, t, 0, 1};
  ASSERT_TRUE(protocol.supports(config));
  ScenarioOptions options;
  options.rushing = true;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    options.seed = seed;
    std::vector<ScenarioFault> faults;
    faults.push_back(ScenarioFault{
        static_cast<ProcId>(n - 1), [](ProcId, const BAConfig&) {
          return std::make_unique<RushingMirror>();
        }});
    for (std::size_t i = 1; i < t; ++i) {
      faults.push_back(test::chaos(static_cast<ProcId>(n - 1 - i),
                                   seed * 131 + i));
    }
    const auto result = ba::run_scenario(protocol, config, options, faults);
    const auto check = sim::check_byzantine_agreement(result, 0, 1);
    EXPECT_TRUE(check.agreement) << name << " seed=" << seed;
    EXPECT_TRUE(check.validity) << name << " seed=" << seed;
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<RushingProtocolSweep::ParamType>& info) {
  std::string tag = std::get<0>(info.param) + "_n" +
                    std::to_string(std::get<1>(info.param)) + "_t" +
                    std::to_string(std::get<2>(info.param));
  for (char& c : tag) {
    if (c == '-') c = '_';
  }
  return tag;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, RushingProtocolSweep,
    ::testing::Values(std::tuple{std::string("dolev-strong"), 7u, 2u},
                      std::tuple{std::string("dolev-strong-relay"), 9u, 2u},
                      std::tuple{std::string("eig"), 7u, 2u},
                      std::tuple{std::string("alg1"), 7u, 3u},
                      std::tuple{std::string("alg2"), 7u, 3u}),
    sweep_name);

TEST(Rushing, ParameterisedFamiliesHold) {
  ScenarioOptions options;
  options.rushing = true;
  for (const auto& protocol :
       {ba::make_alg3_protocol(3), ba::make_alg5_protocol(3)}) {
    const BAConfig config{30, 2, 0, 1};
    std::vector<ScenarioFault> faults;
    faults.push_back(ScenarioFault{29, [](ProcId, const BAConfig&) {
                                     return std::make_unique<RushingMirror>();
                                   }});
    faults.push_back(test::chaos(5, 7));
    const auto result = ba::run_scenario(protocol, config, options, faults);
    const auto check = sim::check_byzantine_agreement(result, 0, 1);
    EXPECT_TRUE(check.agreement) << protocol.name;
    EXPECT_TRUE(check.validity) << protocol.name;
  }
}

TEST(Rushing, EquivalentToNormalWhenNoFaults) {
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");
  const BAConfig config{6, 1, 0, 1};
  ScenarioOptions rushing;
  rushing.rushing = true;
  rushing.record_history = true;
  ScenarioOptions normal;
  normal.record_history = true;
  const auto a = ba::run_scenario(protocol, config, rushing);
  const auto b = ba::run_scenario(protocol, config, normal);
  EXPECT_TRUE(a.history == b.history);
  EXPECT_EQ(a.decisions, b.decisions);
}

}  // namespace
}  // namespace dr
