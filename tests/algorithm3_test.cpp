#include "ba/algorithm3.h"

#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "test_util.h"

namespace dr::ba {
namespace {

using test::chaos;
using test::equivocator;
using test::expect_agreement;
using test::silent;

TEST(Alg3Layout, Arithmetic) {
  // n = 20, t = 2 (actives 0..4), s = 3: passives 5..19 in 5 sets.
  const Alg3Layout layout{20, 2, 3};
  EXPECT_EQ(layout.active_count(), 5u);
  EXPECT_EQ(layout.passive_count(), 15u);
  EXPECT_EQ(layout.set_count(), 5u);
  EXPECT_TRUE(layout.is_active(4));
  EXPECT_FALSE(layout.is_active(5));
  EXPECT_EQ(layout.set_of(5), 0u);
  EXPECT_EQ(layout.set_of(7), 0u);
  EXPECT_EQ(layout.set_of(8), 1u);
  EXPECT_EQ(layout.index_in_set(5), 1u);  // root
  EXPECT_EQ(layout.index_in_set(7), 3u);
  EXPECT_EQ(layout.root_of(0), 5u);
  EXPECT_EQ(layout.root_of(4), 17u);
  EXPECT_EQ(layout.member(1, 2), 9u);
  EXPECT_EQ(layout.set_size(4), 3u);
}

TEST(Alg3Layout, RaggedLastSet) {
  // 16 passives in sets of 5: sizes 5, 5, 5, 1.
  const Alg3Layout layout{21, 2, 5};
  EXPECT_EQ(layout.passive_count(), 16u);
  EXPECT_EQ(layout.set_count(), 4u);
  EXPECT_EQ(layout.set_size(0), 5u);
  EXPECT_EQ(layout.set_size(3), 1u);
  EXPECT_EQ(layout.root_of(3), 20u);
  EXPECT_EQ(layout.index_in_set(20), 1u);
}

class Algorithm3Sweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, Value>> {};

TEST_P(Algorithm3Sweep, FailureFree) {
  const auto& [n, t, s, value] = GetParam();
  expect_agreement(make_alg3_protocol(s), BAConfig{n, t, 0, value}, 1);
}

TEST_P(Algorithm3Sweep, MessageAndPhaseBounds) {
  const auto& [n, t, s, value] = GetParam();
  const auto result =
      expect_agreement(make_alg3_protocol(s), BAConfig{n, t, 0, value}, 1);
  EXPECT_LE(static_cast<double>(result.metrics.messages_by_correct()),
            bounds::alg3_message_upper_bound(n, t, s));
  EXPECT_LE(result.metrics.last_active_phase(),
            bounds::alg3_phase_bound(t, s));
}

TEST_P(Algorithm3Sweep, SilentRootsWorstCase) {
  const auto& [n, t, s, value] = GetParam();
  const Alg3Layout layout{n, t, s};
  // Make up to t roots silent: the repair phase has to kick in.
  std::vector<ScenarioFault> faults;
  for (std::size_t set = 0; set < layout.set_count() && faults.size() < t;
       ++set) {
    faults.push_back(silent(layout.root_of(set)));
  }
  const auto result = expect_agreement(make_alg3_protocol(s),
                                       BAConfig{n, t, 0, value}, 1, faults);
  EXPECT_LE(static_cast<double>(result.metrics.messages_by_correct()),
            bounds::alg3_message_upper_bound(n, t, s));
}

TEST_P(Algorithm3Sweep, SilentMembersStillAgree) {
  const auto& [n, t, s, value] = GetParam();
  const Alg3Layout layout{n, t, s};
  std::vector<ScenarioFault> faults;
  // Silence the second member of each set (if it exists) up to t faults.
  for (std::size_t set = 0; set < layout.set_count() && faults.size() < t;
       ++set) {
    if (layout.set_size(set) >= 2) {
      faults.push_back(silent(layout.member(set, 2)));
    }
  }
  expect_agreement(make_alg3_protocol(s), BAConfig{n, t, 0, value}, 1,
                   faults);
}

TEST_P(Algorithm3Sweep, RandomByzantineMix) {
  const auto& [n, t, s, value] = GetParam();
  const Alg3Layout layout{n, t, s};
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    std::vector<ScenarioFault> faults;
    // Mix: one faulty active (not the transmitter), rest passives.
    faults.push_back(chaos(1, seed * 31));
    for (std::size_t i = 1; i < t; ++i) {
      faults.push_back(chaos(
          static_cast<ProcId>(layout.active_count() + 2 * i), seed * 37 + i));
    }
    expect_agreement(make_alg3_protocol(s), BAConfig{n, t, 0, value}, seed,
                     faults);
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<Algorithm3Sweep::ParamType>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param)) + "_v" +
         std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Algorithm3Sweep,
    ::testing::Values(
        std::tuple{8u, 1u, 2u, Value{1}}, std::tuple{8u, 1u, 2u, Value{0}},
        std::tuple{12u, 2u, 3u, Value{1}}, std::tuple{20u, 2u, 3u, Value{1}},
        std::tuple{20u, 2u, 5u, Value{0}}, std::tuple{30u, 3u, 4u, Value{1}},
        std::tuple{30u, 3u, 12u, Value{1}}, std::tuple{40u, 2u, 1u, Value{1}},
        std::tuple{64u, 4u, 16u, Value{1}}),
    sweep_name);

TEST(Algorithm3, FaultyRootShowingWrongValueIsOverridden) {
  // A root that forwards a fabricated 0-chain to its members: members must
  // still decide the transmitter's value 1 via the repair phase.
  const std::size_t n = 14;
  const std::size_t t = 2;
  const std::size_t s = 3;
  const Alg3Layout layout{n, t, s};
  const ProcId root = layout.root_of(0);

  struct LyingRoot final : sim::Process {
    LyingRoot(std::size_t t, const Alg3Layout& layout)
        : t_(t), layout_(layout) {}
    void on_phase(sim::Context& ctx) override {
      // At each chain slot, send members a coalition-signed wrong value.
      const sim::PhaseNum phase = ctx.phase();
      const std::size_t set = layout_.set_of(ctx.self());
      if (phase >= t_ + 4 && phase % 2 == (t_ + 4) % 2) {
        const std::size_t j = (phase - t_) / 2;
        if (j >= 2 && j <= layout_.set_size(set)) {
          // Sign value 0 pretending to be an active supporter (we hold only
          // our own key, so fabricate with it; members should reject chains
          // whose first signer is not active, or sign and get repaired).
          SignedValue sv{0, {}};
          sv = extend(sv, ctx.signer(), ctx.self());
          ctx.send(layout_.member(set, j), encode(sv), sv.chain.size());
        }
      }
    }
    std::optional<Value> decision() const override { return std::nullopt; }
    std::size_t t_;
    Alg3Layout layout_;
  };

  std::vector<ScenarioFault> faults;
  faults.push_back(ScenarioFault{
      root, [t, layout](ProcId, const BAConfig&) {
        return std::make_unique<LyingRoot>(t, layout);
      }});
  const auto result = expect_agreement(make_alg3_protocol(s),
                                       BAConfig{n, t, 0, 1}, 1, faults);
  (void)result;
}

TEST(Algorithm3, WorstCaseSilentRootsCostMoreThanFailureFree) {
  const std::size_t n = 40;
  const std::size_t t = 3;
  const std::size_t s = 4;
  const Alg3Layout layout{n, t, s};
  const auto clean =
      expect_agreement(make_alg3_protocol(s), BAConfig{n, t, 0, 1}, 1);
  std::vector<ScenarioFault> faults;
  for (std::size_t set = 0; set < t; ++set) {
    faults.push_back(silent(layout.root_of(set)));
  }
  const auto dirty = expect_agreement(make_alg3_protocol(s),
                                      BAConfig{n, t, 0, 1}, 1, faults);
  EXPECT_GT(dirty.metrics.messages_by_correct() + 3 * (2 * t + 1),
            clean.metrics.messages_by_correct());
}

TEST(Algorithm3, Lemma1FactReportCompleteness) {
  // The Fact inside Lemma 1's proof: if the root of a set C is correct,
  // m(s) contains the signature of each correct member of C (except the
  // root) and reaches every active processor at phase t+2s+2.
  const std::size_t n = 20;
  const std::size_t t = 2;
  const std::size_t s = 4;
  const Alg3Layout layout{n, t, s};
  // Silence one *member* (not a root) so the chain has to skip it.
  const ProcId silent_member = layout.member(0, 3);
  const auto result = ba::run_scenario(
      make_alg3_protocol(s), BAConfig{n, t, 0, 1}, 1,
      {silent(silent_member)}, /*record_history=*/true);
  EXPECT_TRUE(sim::check_byzantine_agreement(result, 0, 1).validity);

  const sim::PhaseNum report_phase =
      static_cast<sim::PhaseNum>(t + 2 * s + 2);
  for (std::size_t set = 0; set < layout.set_count(); ++set) {
    const ProcId root = layout.root_of(set);
    const auto reports = result.history.phase(report_phase).out_edges(root);
    // Every active receives the report...
    EXPECT_EQ(reports.size(), layout.active_count()) << "set " << set;
    if (reports.empty()) continue;
    const auto sv = decode_signed_value(reports.front().label);
    ASSERT_TRUE(sv.has_value());
    // ...containing every correct member's signature.
    for (std::size_t j = 2; j <= layout.set_size(set); ++j) {
      const ProcId member = layout.member(set, j);
      if (member == silent_member) {
        EXPECT_FALSE(contains_signer(*sv, member));
      } else {
        EXPECT_TRUE(contains_signer(*sv, member))
            << "set " << set << " member " << member;
      }
    }
  }
}

TEST(Algorithm3, Supports) {
  EXPECT_TRUE(Algorithm3::supports(BAConfig{8, 1, 0, 1}, 2));
  EXPECT_FALSE(Algorithm3::supports(BAConfig{5, 2, 0, 1}, 2));  // no passives
  EXPECT_FALSE(Algorithm3::supports(BAConfig{8, 1, 0, 1}, 0));  // s = 0
  EXPECT_FALSE(Algorithm3::supports(BAConfig{8, 1, 1, 1}, 2));
  EXPECT_FALSE(Algorithm3::supports(BAConfig{8, 1, 0, 7}, 2));
}

}  // namespace
}  // namespace dr::ba
