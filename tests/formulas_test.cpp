// Boundary evaluations of the closed-form bounds the conformance oracles
// compare against. The interesting edges: n = 2t+1 (the tight Algorithm 1/2
// regime), s = 1 and s = 4t (the extremes of Algorithm 3's chain length),
// and t = 0 (no faults tolerated — every budget must still be well defined).
// The exact integer forms must never truncate below the real-valued bound.
#include "bounds/formulas.h"

#include <gtest/gtest.h>

namespace dr::bounds {
namespace {

TEST(CeilDiv, ExactAndRoundingCases) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(6, 3), 2u);
  EXPECT_EQ(ceil_div(7, 3), 3u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
  EXPECT_EQ(ceil_div(5, 0), 0u);  // guarded, not UB
}

TEST(Alg3Bound, ExactNeverTruncatesBelowTheRealBound) {
  // Sweep (n, t, s) including every non-divisible 4tn/s shape the oracle
  // can meet; the integer threshold must dominate the real-valued bound
  // and stay within 1 of it.
  for (std::size_t t = 0; t <= 4; ++t) {
    for (std::size_t n = 2 * t + 2; n <= 2 * t + 8; ++n) {
      for (std::size_t s = 1; s <= 4 * t + 1; ++s) {
        const double real = alg3_message_upper_bound(n, t, s);
        const std::size_t exact = alg3_message_upper_bound_exact(n, t, s);
        EXPECT_GE(static_cast<double>(exact), real)
            << "n=" << n << " t=" << t << " s=" << s;
        EXPECT_LT(static_cast<double>(exact), real + 1.0)
            << "n=" << n << " t=" << t << " s=" << s;
      }
    }
  }
}

TEST(Alg3Bound, TruncationHazardAtNonDivisibleParameters) {
  // The case the exact form exists for: 4tn/s = 56/3 = 18.67. Plain
  // integer division would give 18 and understate the paper's budget.
  const std::size_t truncated = 2 * 7 + (4 * 2 * 7) / 3 + 3 * 2 * 2 * 3;
  EXPECT_EQ(alg3_message_upper_bound_exact(7, 2, 3), truncated + 1);
  EXPECT_GT(static_cast<double>(alg3_message_upper_bound_exact(7, 2, 3)),
            alg3_message_upper_bound(7, 2, 3) - 1e-9);
}

TEST(Alg3Bound, ChainLengthExtremes) {
  // s = 1: the relay term is exactly 4tn, no rounding.
  EXPECT_EQ(alg3_message_upper_bound_exact(10, 2, 1),
            2 * 10 + 4 * 2 * 10 + 3 * 4 * 1);
  EXPECT_DOUBLE_EQ(alg3_message_upper_bound(10, 2, 1),
                   static_cast<double>(2 * 10 + 80 + 12));
  // s = 4t: 4tn/s = n exactly, again no rounding.
  const std::size_t t = 2, s = 4 * t, n = 10;
  EXPECT_EQ(alg3_message_upper_bound_exact(n, t, s), 2 * n + n + 3 * t * t * s);
  EXPECT_DOUBLE_EQ(alg3_message_upper_bound(n, t, s),
                   static_cast<double>(3 * n + 3 * t * t * s));
}

TEST(Alg12Bounds, TightRegimeAndZeroFaults) {
  // n = 2t+1 is the only regime Algorithms 1/2 run in; their budgets are
  // functions of t alone and must agree with the paper's polynomials.
  EXPECT_EQ(alg1_message_upper_bound(3), 2 * 9 + 2 * 3);
  EXPECT_EQ(alg2_message_upper_bound(3), 5 * 9 + 5 * 3);
  EXPECT_EQ(alg1_phase_bound(3), 5u);
  EXPECT_EQ(alg2_phase_bound(3), 12u);
  // t = 0: degenerate but well defined — no cascade, phases collapse to
  // the constants.
  EXPECT_EQ(alg1_message_upper_bound(0), 0u);
  EXPECT_EQ(alg2_message_upper_bound(0), 0u);
  EXPECT_EQ(alg1_phase_bound(0), 2u);
  EXPECT_EQ(alg2_phase_bound(0), 3u);
  EXPECT_EQ(alg3_phase_bound(0, 1), 5u);
  EXPECT_EQ(alg5_phase_bound(0, 1), 6u);
}

TEST(LowerBounds, Theorem1ExactCeil) {
  // n(t+1)/4 = 10*4/4 = 10 exactly; 9*5/4 = 11.25 -> 12.
  EXPECT_EQ(theorem1_signature_lower_bound_exact(10, 3), 10u);
  EXPECT_EQ(theorem1_signature_lower_bound_exact(9, 4), 12u);
  EXPECT_DOUBLE_EQ(theorem1_signature_lower_bound(9, 4), 11.25);
  // t = 0: still n/4 signatures across the two failure-free histories.
  EXPECT_EQ(theorem1_signature_lower_bound_exact(7, 0), 2u);
  for (std::size_t n = 2; n <= 12; ++n) {
    for (std::size_t t = 0; 2 * t + 1 <= n; ++t) {
      EXPECT_GE(static_cast<double>(theorem1_signature_lower_bound_exact(n, t)),
                theorem1_signature_lower_bound(n, t));
      EXPECT_LT(static_cast<double>(theorem1_signature_lower_bound_exact(n, t)),
                theorem1_signature_lower_bound(n, t) + 1.0);
    }
  }
}

TEST(LowerBounds, Theorem2BoundaryShapes) {
  // t = 0: the max{} is carried by the (n-1)/2 term.
  EXPECT_DOUBLE_EQ(theorem2_message_lower_bound(9, 0), 4.0);
  EXPECT_EQ(theorem2_per_faulty_lower_bound(0), 1u);
  // Large t at n = 2t+1: the quadratic term dominates.
  EXPECT_DOUBLE_EQ(theorem2_message_lower_bound(9, 4), 9.0);
  EXPECT_EQ(theorem2_per_faulty_lower_bound(4), 3u);   // ceil(1 + 2)
  EXPECT_EQ(theorem2_per_faulty_lower_bound(5), 4u);   // ceil(1 + 2.5)
}

TEST(ExchangeBounds, Alg4AndBaselines) {
  EXPECT_EQ(alg4_message_upper_bound(3), 3 * 2 * 9);
  EXPECT_EQ(naive_exchange_messages(9), 72u);
  // t = 0 relay baseline: (n-1) + (n-1) — two one-signature waves.
  EXPECT_EQ(relay_exchange_messages(9, 0), 16u);
  EXPECT_EQ(dolev_strong_broadcast_message_bound(5), 4 + 2 * 16);
  EXPECT_EQ(dolev_strong_relay_message_bound(5, 0), 4 + 10 + 8);
}

}  // namespace
}  // namespace dr::bounds
