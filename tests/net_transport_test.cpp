// Transport backends: authenticated tagging, per-link FIFO, loopback,
// timeouts, and frame reassembly across real chunk boundaries — the same
// assertions against both implementations.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/frame.h"
#include "net/harness.h"
#include "net/transport.h"

namespace dr::net {
namespace {

using std::chrono::milliseconds;

class TransportTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<Transport> make(std::size_t n) {
    return make_transport(GetParam(), n);
  }
};

Bytes bytes_of(std::initializer_list<int> values) {
  Bytes out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// Drains until `total` bytes arrived from `from` (TCP may split reads).
Bytes drain_from(Transport& transport, ProcId self, ProcId from,
                 std::size_t total) {
  Bytes got;
  for (int rounds = 0; got.size() < total && rounds < 100; ++rounds) {
    std::vector<RawChunk> chunks;
    transport.recv(self, chunks, milliseconds(200));
    for (const RawChunk& chunk : chunks) {
      EXPECT_EQ(chunk.from, from);
      append(got, chunk.bytes);
    }
  }
  return got;
}

TEST_P(TransportTest, DeliversTaggedWithTheLinkIdentity) {
  const auto transport = make(3);
  const Bytes payload = bytes_of({1, 2, 3});
  transport->send(2, 0, payload);
  EXPECT_EQ(drain_from(*transport, 0, 2, payload.size()), payload);
  transport->shutdown();
}

TEST_P(TransportTest, PreservesPerLinkFifoOrder) {
  const auto transport = make(2);
  Bytes expected;
  for (int i = 0; i < 50; ++i) {
    const Bytes piece = bytes_of({i, i + 1});
    transport->send(0, 1, piece);
    append(expected, piece);
  }
  EXPECT_EQ(drain_from(*transport, 1, 0, expected.size()), expected);
  transport->shutdown();
}

TEST_P(TransportTest, LoopbackSendToSelf) {
  const auto transport = make(2);
  const Bytes payload = bytes_of({42});
  transport->send(1, 1, payload);
  EXPECT_EQ(drain_from(*transport, 1, 1, payload.size()), payload);
  transport->shutdown();
}

TEST_P(TransportTest, RecvTimesOutWhenIdle) {
  const auto transport = make(2);
  std::vector<RawChunk> chunks;
  EXPECT_FALSE(transport->recv(0, chunks, milliseconds(10)));
  EXPECT_TRUE(chunks.empty());
  transport->shutdown();
}

TEST_P(TransportTest, FramesSurviveTransportChunking) {
  // Many frames in a burst: whatever chunk boundaries the transport
  // produces, the assembler recovers every frame in order.
  const auto transport = make(2);
  std::vector<Frame> sent;
  for (PhaseNum k = 1; k <= 200; ++k) {
    Frame frame{FrameKind::kPayload, 0, 1, k,
                Bytes(static_cast<std::size_t>(k % 97), 0x5A)};
    transport->send(0, 1, encode_frame(frame));
    sent.push_back(std::move(frame));
  }
  FrameAssembler assembler(0, 1);
  FrameStats stats;
  std::vector<Frame> got;
  for (int rounds = 0; got.size() < sent.size() && rounds < 200; ++rounds) {
    std::vector<RawChunk> chunks;
    transport->recv(1, chunks, milliseconds(200));
    for (const RawChunk& chunk : chunks) {
      ASSERT_EQ(chunk.from, 0u);
      assembler.feed(chunk.bytes, got, stats);
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_EQ(got, sent);
  EXPECT_EQ(stats.rejected(), 0u);
  transport->shutdown();
}

TEST_P(TransportTest, ConcurrentAllToAll) {
  // Every endpoint floods every other endpoint from its own thread; every
  // byte arrives, correctly attributed. This is the transport's actual
  // operating regime under the NetRunner.
  constexpr std::size_t kN = 5;
  constexpr std::size_t kMessages = 100;
  const auto transport = make(kN);
  std::vector<std::vector<std::size_t>> received(
      kN, std::vector<std::size_t>(kN, 0));
  std::vector<std::thread> endpoints;
  for (ProcId p = 0; p < kN; ++p) {
    endpoints.emplace_back([&, p] {
      const Bytes marker(8, static_cast<std::uint8_t>(p));
      for (std::size_t i = 0; i < kMessages; ++i) {
        for (ProcId q = 0; q < kN; ++q) {
          if (q != p) transport->send(p, q, marker);
        }
      }
      const std::size_t expected = (kN - 1) * kMessages * marker.size();
      std::size_t total = 0;
      for (int rounds = 0; total < expected && rounds < 500; ++rounds) {
        std::vector<RawChunk> chunks;
        transport->recv(p, chunks, milliseconds(100));
        for (const RawChunk& chunk : chunks) {
          for (const std::uint8_t byte : chunk.bytes) {
            ASSERT_EQ(byte, static_cast<std::uint8_t>(chunk.from));
          }
          received[p][chunk.from] += chunk.bytes.size();
          total += chunk.bytes.size();
        }
      }
    });
  }
  for (std::thread& endpoint : endpoints) endpoint.join();
  for (ProcId p = 0; p < kN; ++p) {
    for (ProcId q = 0; q < kN; ++q) {
      if (p == q) continue;
      EXPECT_EQ(received[p][q], kMessages * 8u)
          << "endpoint " << p << " from " << q;
    }
  }
  transport->shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TransportTest,
                         ::testing::Values(Backend::kInProcess,
                                           Backend::kTcpLoopback),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace dr::net
